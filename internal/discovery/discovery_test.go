package discovery

import (
	"strings"
	"testing"

	"pfd/internal/pfd"
	"pfd/internal/relation"
)

// table6 is the running example for PFD discovery (Table 6 of the paper).
func table6() *relation.Table {
	t := relation.New("T", "name", "country", "gender")
	t.Append("Tayseer Fahmi", "Egypt", "F")
	t.Append("Tayseer Qasem", "Yemen", "M")
	t.Append("Tayseer Salem", "Egypt", "F")
	t.Append("Tayseer Saeed", "Yemen", "M")
	t.Append("Noor Wagdi", "Egypt", "M")
	t.Append("Noor Shadi", "Yemen", "F")
	t.Append("Noor Hisham", "Egypt", "M")
	t.Append("Noor Hashim", "Yemen", "F")
	t.Append("Esmat Qadhi", "Yemen", "M")
	t.Append("Esmat Farahat", "Egypt", "F")
	return t
}

// zipCityTable gives enough support for the (900)\D{2} -> Los Angeles
// dependency of the paper's introduction, scaled past K.
func zipCityTable() *relation.Table {
	t := relation.New("Zip", "zip", "city")
	zips := []string{"90001", "90002", "90003", "90004", "90005", "90011", "90012"}
	for _, z := range zips {
		t.Append(z, "Los Angeles")
	}
	chi := []string{"60601", "60602", "60603", "60604", "60605", "60606", "60607"}
	for _, z := range chi {
		t.Append(z, "Chicago")
	}
	return t
}

func namesTable() *relation.Table {
	t := relation.New("Name", "name", "gender")
	boys := []string{"John Charles", "John Bosco", "John Stone", "John Smith", "John Parker",
		"David Kim", "David Lee", "David Moore", "David Hall", "David King"}
	girls := []string{"Susan Orlean", "Susan Boyle", "Susan Kim", "Susan Hall", "Susan Price",
		"Stacey Jones", "Stacey Smith", "Stacey Lee", "Stacey King", "Stacey Park"}
	for _, n := range boys {
		t.Append(n, "M")
	}
	for _, n := range girls {
		t.Append(n, "F")
	}
	return t
}

func findDep(res *Result, lhs, rhs string) *Dependency {
	for _, d := range res.Dependencies {
		if len(d.LHS) == 1 && d.LHS[0] == lhs && d.RHS == rhs {
			return d
		}
	}
	return nil
}

func TestDiscoverZipCity(t *testing.T) {
	res := Discover(zipCityTable(), Params{MinSupport: 5, Delta: 0.05, MinCoverage: 0.10})
	dep := findDep(res, "zip", "city")
	if dep == nil {
		t.Fatalf("zip -> city not discovered; got %d deps", len(res.Dependencies))
	}
	// The two 3-digit prefixes generalize to (\D{3})\D{2} (λ5 / ψ4) or the
	// constant rows survive; either way the PFD must flag a corrupted city.
	tb := zipCityTable()
	tb.SetAt(3, 1, "New York")
	vs := dep.PFD.Violations(tb)
	if len(vs) != 1 || vs[0].ErrorCell != (relation.Cell{Row: 3, Col: "city"}) {
		t.Errorf("discovered PFD missed the seeded error: %+v (pfd %s)", vs, dep.PFD)
	}
	if !dep.Variable {
		t.Errorf("zip -> city should generalize to a variable PFD, got %s", dep.PFD)
	}
	if dep.Coverage < 0.99 {
		t.Errorf("coverage = %f, want ~1", dep.Coverage)
	}
}

func TestDiscoverNameGender(t *testing.T) {
	res := Discover(namesTable(), Params{MinSupport: 5, Delta: 0.05, MinCoverage: 0.10})
	dep := findDep(res, "name", "gender")
	if dep == nil {
		t.Fatal("name -> gender not discovered")
	}
	// First names generalize to a first-token variable PFD.
	if !dep.Variable {
		t.Errorf("expected variable PFD, got constants: %s", dep.PFD)
	}
	tb := namesTable()
	tb.SetAt(0, 1, "F") // John Charles marked F
	vs := dep.PFD.Violations(tb)
	found := false
	for _, v := range vs {
		if v.ErrorCell == (relation.Cell{Row: 0, Col: "gender"}) {
			found = true
		}
	}
	if !found {
		t.Errorf("seeded gender error not detected; violations = %+v, pfd = %s", vs, dep.PFD)
	}
}

func TestDiscoverMultiLHSExample8(t *testing.T) {
	// Example 8: with K = 2, δ = 5%, no single-attribute PFD exists, but
	// [name, country] -> gender does and generalizes to a variable PFD.
	res := Discover(table6(), Params{MinSupport: 2, Delta: 0.05, MinCoverage: 0.10, MaxLHS: 2})
	if dep := findDep(res, "name", "gender"); dep != nil {
		t.Errorf("single-attribute name -> gender must not pass with K=2: %s", dep.PFD)
	}
	var multi *Dependency
	for _, d := range res.Dependencies {
		if len(d.LHS) == 2 && d.RHS == "gender" {
			multi = d
		}
	}
	if multi == nil {
		t.Fatalf("[name,country] -> gender not discovered; got: %v", embeddeds(res))
	}
	if !multi.Variable {
		t.Errorf("Example 8 generalizes to a variable PFD, got %s", multi.PFD)
	}
	// The variable PFD must hold on the clean running example.
	if !multi.PFD.Satisfied(table6()) {
		t.Errorf("generalized PFD violated on its own table: %s", multi.PFD)
	}
	// And it must catch a flipped gender.
	tb := table6()
	tb.SetAt(2, 2, "M") // Tayseer Salem, Egypt should be F
	if n := len(multi.PFD.Violations(tb)); n == 0 {
		t.Errorf("flipped gender not detected by %s", multi.PFD)
	}
}

func embeddeds(res *Result) []string {
	out := make([]string, len(res.Dependencies))
	for i, d := range res.Dependencies {
		out[i] = d.Embedded()
	}
	return out
}

func TestQuantitativeColumnsPruned(t *testing.T) {
	tb := relation.New("T", "height", "weight")
	tb.Append("1.75", "70")
	tb.Append("1.8", "80")
	tb.Append("1.65", "60")
	res := Discover(tb, DefaultParams())
	if len(res.Dependencies) != 0 {
		t.Errorf("quantitative columns must yield no PFDs: %v", embeddeds(res))
	}
}

func TestCoverageThresholdRejects(t *testing.T) {
	// Only 7 of 70 rows carry the pattern: 10% coverage passes at γ=10%
	// but fails at γ=50%.
	tb := zipCityTable()
	for i := 0; i < 56; i++ {
		tb.Append("1045"+string(rune('0'+i%10)), "City"+string(rune('A'+i%26)))
	}
	res := Discover(tb, Params{MinSupport: 5, Delta: 0.05, MinCoverage: 0.5})
	if dep := findDep(res, "zip", "city"); dep != nil && dep.Coverage < 0.5 {
		t.Errorf("dependency below coverage threshold reported: %+v", dep)
	}
}

func TestDisableGeneralize(t *testing.T) {
	res := Discover(zipCityTable(), Params{MinSupport: 5, Delta: 0.05, MinCoverage: 0.10, DisableGeneralize: true})
	dep := findDep(res, "zip", "city")
	if dep == nil {
		t.Fatal("zip -> city not discovered")
	}
	if dep.Variable {
		t.Error("generalization must be disabled")
	}
	// Constant rows: every cell's constrained part is a constant.
	for _, row := range dep.PFD.Tableau {
		for _, c := range row.LHS {
			if _, ok := c.Constant(); !ok {
				t.Errorf("non-constant LHS cell %s with generalization disabled", c)
			}
		}
	}
}

func TestDeltaToleratesDirt(t *testing.T) {
	tb := zipCityTable()
	// Dirty one LA row out of 7 (14% noise in the 900 group).
	tb.SetAt(0, 1, "San Diego")
	strict := Discover(tb, Params{MinSupport: 5, Delta: 0.01, MinCoverage: 0.10})
	loose := Discover(tb, Params{MinSupport: 5, Delta: 0.2, MinCoverage: 0.10})
	sd := findDep(strict, "zip", "city")
	ld := findDep(loose, "zip", "city")
	if ld == nil {
		t.Error("loose delta must keep zip -> city on dirty data")
	}
	if sd != nil {
		// With δ=1% the 900-prefix row must be gone; only the clean 606
		// prefix may remain, halving coverage.
		if sd.Coverage > 0.6 {
			t.Errorf("strict delta kept dirty row: %+v", sd)
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	empty := relation.New("E", "a", "b")
	if res := Discover(empty, DefaultParams()); len(res.Dependencies) != 0 {
		t.Error("empty table must yield nothing")
	}
	one := relation.New("O", "a")
	one.Append("x")
	if res := Discover(one, DefaultParams()); len(res.Dependencies) != 0 {
		t.Error("single column must yield nothing")
	}
}

func TestDependencyEmbeddedString(t *testing.T) {
	d := &Dependency{LHS: []string{"zip"}, RHS: "city"}
	if d.Embedded() != "[zip] -> [city]" {
		t.Errorf("Embedded = %q", d.Embedded())
	}
}

func TestDiscoveredPFDsRenderAsConstraints(t *testing.T) {
	res := Discover(zipCityTable(), Params{MinSupport: 5, Delta: 0.05, MinCoverage: 0.10, DisableGeneralize: true})
	dep := findDep(res, "zip", "city")
	if dep == nil {
		t.Fatal("zip -> city missing")
	}
	s := dep.PFD.String()
	if !strings.Contains(s, "zip = ") || !strings.Contains(s, "city = ") {
		t.Errorf("rendering = %q", s)
	}
}

var _ = pfd.Wildcard // keep import if unused paths change
