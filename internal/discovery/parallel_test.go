package discovery

import (
	"testing"

	"pfd/internal/relation"
)

// withWorkers runs fn with the candidate pool forced to n workers, so the
// parallel path is exercised (and race-checked) even on single-core CI.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	old := numWorkers
	numWorkers = n
	defer func() { numWorkers = old }()
	fn()
}

func discoveryFingerprint(res *Result) []string {
	out := make([]string, 0, len(res.Dependencies))
	for _, d := range res.Dependencies {
		out = append(out, d.PFD.String())
	}
	return out
}

// TestParallelDiscoveryDeterministic asserts the worker pool reproduces
// the sequential walk exactly: same dependencies, same tableaux, same
// coverage, in the same order, for every table and worker count.
func TestParallelDiscoveryDeterministic(t *testing.T) {
	params := Params{MinSupport: 2, Delta: 0.05, MinCoverage: 0.10, MaxLHS: 2}
	tables := map[string]*relation.Table{
		"table6":  table6(),
		"zipCity": zipCityTable(),
		"names":   namesTable(),
	}
	for name, tbl := range tables {
		var seq *Result
		withWorkers(t, 1, func() { seq = Discover(tbl, params) })
		for _, workers := range []int{2, 4, 8} {
			var par *Result
			withWorkers(t, workers, func() { par = Discover(tbl, params) })
			a, b := discoveryFingerprint(seq), discoveryFingerprint(par)
			if len(a) != len(b) {
				t.Fatalf("%s: %d workers found %d deps, sequential %d", name, workers, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("%s: dep %d differs with %d workers:\n  seq %s\n  par %s",
						name, i, workers, a[i], b[i])
				}
			}
			for i, d := range par.Dependencies {
				s := seq.Dependencies[i]
				if d.Coverage != s.Coverage || d.Support != s.Support || d.Variable != s.Variable {
					t.Errorf("%s: dep %d metrics differ with %d workers", name, i, workers)
				}
			}
		}
	}
}
