package discovery

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pfd/internal/relation"
)

// ctxTable builds a table with enough non-quantitative columns to give
// the lattice several candidates per level.
func ctxTable() *relation.Table {
	t := relation.New("T", "a", "b", "c", "d")
	for i := 0; i < 60; i++ {
		g := i % 3
		t.Append(
			fmt.Sprintf("A%d-%02d", g, i),
			fmt.Sprintf("B%d-x", g),
			fmt.Sprintf("C%d-y", g),
			fmt.Sprintf("D%d-z", g),
		)
	}
	return t
}

func TestDiscoverContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := DiscoverContext(ctx, ctxTable(), DefaultParams(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Dependencies) != 0 {
		t.Errorf("pre-canceled run must not produce dependencies: %+v", res)
	}
}

// TestDiscoverContextCancelFromProgress cancels deterministically at
// the level-1 boundary of a MaxLHS=2 walk: level 2 must never run.
func TestDiscoverContextCancelFromProgress(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events []Progress
	params := DefaultParams()
	params.MaxLHS = 2
	res, err := DiscoverContext(ctx, ctxTable(), params, func(p Progress) {
		events = append(events, p)
		if p.Level == 1 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(events) != 1 {
		t.Fatalf("progress events = %+v, want exactly the level-1 boundary", events)
	}
	if events[0].MaxLevel != 2 || events[0].Candidates == 0 {
		t.Errorf("progress = %+v, want MaxLevel=2 and a nonzero candidate count", events[0])
	}
	// Level-1 results accepted before the cancellation are retained.
	if len(res.Dependencies) != events[0].Dependencies {
		t.Errorf("partial result has %d deps, progress reported %d",
			len(res.Dependencies), events[0].Dependencies)
	}
}

// TestDiscoverContextCancelMidLevel cancels concurrently with the
// worker pool and requires a prompt, race-clean return.
func TestDiscoverContextCancelMidLevel(t *testing.T) {
	old := numWorkers
	numWorkers = 4
	defer func() { numWorkers = old }()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(500 * time.Microsecond)
		cancel()
	}()
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = DiscoverContext(ctx, ctxTable(), DefaultParams(), nil)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("DiscoverContext did not return promptly after cancellation")
	}
	// The run may legitimately finish before the cancel lands; only a
	// wrong error kind is a failure.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
}
