package source

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pfd/internal/relation"
)

func writeSnapshotFixture(t *testing.T) string {
	t.Helper()
	tb := relation.New("Zip", "zip", "city")
	tb.Append("90001", "Los Angeles")
	tb.Append("60601", "Chicago")
	path := filepath.Join(t.TempDir(), "zip.pfdt")
	if err := tb.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSnapshotSourceMaterialize(t *testing.T) {
	path := writeSnapshotFixture(t)
	src := SnapshotFile("", path)
	if src.Name() != "Zip" {
		t.Errorf("Name = %q, want stored name", src.Name())
	}
	tb, err := Materialize(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 || tb.Value(1, "city") != "Chicago" {
		t.Errorf("rows wrong: %d rows, city[1]=%q", tb.NumRows(), tb.Value(1, "city"))
	}
	if got := src.Columns(); len(got) != 2 || got[0] != "zip" || got[1] != "city" {
		t.Errorf("Columns = %v", got)
	}
}

func TestSnapshotSourceNameOverride(t *testing.T) {
	path := writeSnapshotFixture(t)
	src := SnapshotFile("ref", path)
	if src.Name() != "ref" {
		t.Errorf("Name = %q, want override", src.Name())
	}
	tb, err := Materialize(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Name != "ref" {
		t.Errorf("table name = %q, want override applied", tb.Name)
	}
}

func TestSnapshotSourceReiterable(t *testing.T) {
	src := SnapshotFile("", writeSnapshotFixture(t))
	for pass := 0; pass < 2; pass++ {
		n := 0
		for tuple, err := range src.Tuples(context.Background()) {
			if err != nil {
				t.Fatal(err)
			}
			if tuple["zip"] == "" {
				t.Errorf("pass %d: tuple missing zip: %v", pass, tuple)
			}
			n++
		}
		if n != 2 {
			t.Errorf("pass %d: %d tuples, want 2", pass, n)
		}
	}
}

func TestSnapshotSourceErrors(t *testing.T) {
	// Missing file: a *ParseError from materialization and iteration.
	src := SnapshotFile("ref", filepath.Join(t.TempDir(), "absent.pfdt"))
	_, err := Materialize(context.Background(), src)
	var pe *ParseError
	if !errors.As(err, &pe) || !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file err = %v, want *ParseError wrapping ErrNotExist", err)
	}
	for _, err := range src.Tuples(context.Background()) {
		if !errors.As(err, &pe) {
			t.Fatalf("Tuples err = %v, want *ParseError", err)
		}
	}

	// Corrupt file (a valid snapshot cut mid-header): the typed
	// snapshot error stays errors.Is-matchable through the *ParseError
	// wrap.
	good, err := os.ReadFile(writeSnapshotFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bad.pfdt")
	if err := os.WriteFile(path, good[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	bad := SnapshotFile("ref", path)
	if _, err := Materialize(context.Background(), bad); !errors.As(err, &pe) ||
		(!errors.Is(err, relation.ErrSnapshotTruncated) && !errors.Is(err, relation.ErrSnapshotChecksum)) {
		t.Fatalf("corrupt file err = %v, want typed snapshot error behind *ParseError", err)
	}
}
