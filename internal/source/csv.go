package source

import (
	"bufio"
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"iter"
	"os"

	"pfd/internal/relation"
)

// errConsumed marks a second iteration of a single-shot source.
var errConsumed = errors.New("reader-backed source already consumed; use a file- or table-backed source for re-iteration")

// backing is the shared substrate of file- or reader-fed sources:
// file-backed sources reopen the path per iteration (re-iterable),
// reader-backed ones are single-shot.
type backing struct {
	name string
	path string
	r    io.Reader
	used bool
}

// open returns the backing reader and a cleanup func.
func (b *backing) open() (io.Reader, func(), error) {
	if b.path != "" {
		f, err := os.Open(b.path)
		if err != nil {
			return nil, nil, &ParseError{Source: b.name, Path: b.path, Err: err}
		}
		return f, func() { f.Close() }, nil
	}
	if b.used {
		return nil, nil, &ParseError{Source: b.name, Err: errConsumed}
	}
	b.used = true
	return b.r, func() {}, nil
}

// CSVSource reads header-first CSV, either from a file path
// (re-iterable: the file is reopened per iteration) or from an
// io.Reader (single-shot).
type CSVSource struct {
	backing
}

// NewCSV wraps a reader of header-first CSV. The source is
// single-shot: it can be iterated or materialized once.
func NewCSV(name string, r io.Reader) *CSVSource {
	return &CSVSource{backing{name: name, r: r}}
}

// CSVFile names a CSV file with a header row. The file is opened at
// iteration time and reopened on each iteration, so the source is
// re-iterable; an unopenable file surfaces as a *ParseError from the
// first record.
func CSVFile(name, path string) *CSVSource {
	return &CSVSource{backing{name: name, path: path}}
}

// Name returns the relation name.
func (s *CSVSource) Name() string { return s.name }

// Columns returns nil: the header is not read until iteration.
func (s *CSVSource) Columns() []string { return nil }

// Tuples streams the records as column->value maps. The CSV reader
// enforces the header's field count, so a jagged record terminates the
// sequence with a record-numbered *ParseError instead of surfacing
// later as a confusing per-tuple MissingColumnError.
func (s *CSVSource) Tuples(ctx context.Context) iter.Seq2[Tuple, error] {
	return func(yield func(Tuple, error) bool) {
		r, cleanup, err := s.open()
		if err != nil {
			yield(nil, err)
			return
		}
		defer cleanup()
		cr := csv.NewReader(bufio.NewReaderSize(r, 1<<20))
		cr.ReuseRecord = true
		header, err := cr.Read()
		if err == io.EOF {
			return
		}
		if err != nil {
			yield(nil, &ParseError{Source: s.name, Path: s.path, Record: 1,
				Err: fmt.Errorf("reading CSV header: %w", err)})
			return
		}
		cols := append([]string(nil), header...)
		for rec := 2; ; rec++ {
			if rec%ctxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					yield(nil, err)
					return
				}
			}
			record, err := cr.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				yield(nil, &ParseError{Source: s.name, Path: s.path, Record: rec, Err: err})
				return
			}
			tuple := make(Tuple, len(cols))
			for j, c := range cols {
				tuple[c] = record[j]
			}
			if !yield(tuple, nil) {
				return
			}
		}
	}
}

// ReadTable materializes the CSV into a Table, preserving the header's
// column order. It streams record by record with the same periodic
// context checks as Tuples, so canceling mid-file on a large CSV
// returns promptly.
func (s *CSVSource) ReadTable(ctx context.Context) (*relation.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, cleanup, err := s.open()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	cr := csv.NewReader(bufio.NewReaderSize(r, 1<<20))
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err == io.EOF {
		return nil, &ParseError{Source: s.name, Path: s.path, Err: errors.New("csv has no header")}
	}
	if err != nil {
		return nil, &ParseError{Source: s.name, Path: s.path, Record: 1,
			Err: fmt.Errorf("reading CSV header: %w", err)}
	}
	t := relation.New(s.name, header...)
	for rec := 2; ; rec++ {
		if rec%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		record, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, &ParseError{Source: s.name, Path: s.path, Record: rec, Err: err}
		}
		if len(record) != len(t.Cols) {
			return nil, &ParseError{Source: s.name, Path: s.path, Record: rec,
				Err: fmt.Errorf("record has %d fields, want %d", len(record), len(t.Cols))}
		}
		t.Append(record...)
	}
}
