package source

import (
	"context"
	"fmt"
	"iter"

	"pfd/internal/relation"
)

// SnapshotChunksSource reads an ordered list of .pfdt chunk files as
// one logical relation — the workload format cmd/datagen -chunk-rows
// streams out and the out-of-core discovery driver mines. Row order is
// file order then row order within each file.
//
// Unlike SnapshotSource it never holds more than one chunk in memory:
// each file is loaded, drained, and dropped. The Chunks iterator is
// the columnar fast path (one *relation.Table per file, dictionaries
// and codes intact); Tuples is the generic per-record view every other
// consumer uses. Chunks after the first must carry the same columns in
// the same order — a mismatch surfaces as a *ParseError naming the
// offending file.
type SnapshotChunksSource struct {
	name  string
	paths []string
	cols  []string // cached from the first chunk header
}

// SnapshotChunks names an ordered list of .pfdt chunk files forming
// one relation. name is the relation name ("" adopts the first
// chunk's stored name).
func SnapshotChunks(name string, paths ...string) *SnapshotChunksSource {
	return &SnapshotChunksSource{name: name, paths: append([]string(nil), paths...)}
}

// Name returns the relation name.
func (s *SnapshotChunksSource) Name() string {
	if s.name != "" {
		return s.name
	}
	if len(s.paths) > 0 {
		return s.paths[0]
	}
	return "chunks"
}

// Columns returns the column names, loading the first chunk's header
// on first call (the chunk itself is dropped again).
func (s *SnapshotChunksSource) Columns() []string {
	if s.cols == nil && len(s.paths) > 0 {
		if t, err := relation.LoadSnapshotFile(s.paths[0]); err == nil {
			s.cols = t.Cols
			if s.name == "" {
				s.name = t.Name
			}
		}
	}
	return s.cols
}

// Chunks iterates the chunk tables in file order. Each table is
// freshly loaded and owned by the consumer; dropping it after use
// keeps the peak footprint at one chunk. The sequence ends with a
// *ParseError on a load failure or column mismatch, or ctx.Err() on
// cancellation.
func (s *SnapshotChunksSource) Chunks(ctx context.Context) iter.Seq2[*relation.Table, error] {
	return func(yield func(*relation.Table, error) bool) {
		for i, path := range s.paths {
			if err := ctx.Err(); err != nil {
				yield(nil, err)
				return
			}
			t, err := relation.LoadSnapshotFile(path)
			if err != nil {
				yield(nil, &ParseError{Source: s.Name(), Path: path, Err: err})
				return
			}
			if i == 0 {
				if s.cols == nil {
					s.cols = t.Cols
				}
				if s.name == "" {
					s.name = t.Name
				}
			} else if !equalCols(t.Cols, s.cols) {
				yield(nil, &ParseError{Source: s.Name(), Path: path,
					Err: fmt.Errorf("chunk columns %v do not match first chunk's %v", t.Cols, s.cols)})
				return
			}
			t.Name = s.Name()
			if !yield(t, nil) {
				return
			}
		}
	}
}

// Tuples iterates every record across all chunks, in order.
func (s *SnapshotChunksSource) Tuples(ctx context.Context) iter.Seq2[Tuple, error] {
	return func(yield func(Tuple, error) bool) {
		n := 0
		for t, err := range s.Chunks(ctx) {
			if err != nil {
				yield(nil, err)
				return
			}
			buf := make([]string, 0, len(t.Cols))
			for r := 0; r < t.NumRows(); r++ {
				n++
				if n%ctxCheckEvery == 0 {
					if err := ctx.Err(); err != nil {
						yield(nil, err)
						return
					}
				}
				buf = t.AppendRowTo(buf[:0], r)
				tuple := make(Tuple, len(t.Cols))
				for i, c := range t.Cols {
					tuple[c] = buf[i]
				}
				if !yield(tuple, nil) {
					return
				}
			}
		}
	}
}

func equalCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
