package source

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pfd/internal/relation"
)

func TestCSVMaterializePreservesColumnOrder(t *testing.T) {
	src := NewCSV("Zip", strings.NewReader("zip,city,state\n90001,Los Angeles,CA\n60601,Chicago,IL\n"))
	tb, err := Materialize(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(tb.Cols, ","); got != "zip,city,state" {
		t.Errorf("column order = %q, want header order", got)
	}
	if tb.NumRows() != 2 || tb.Value(1, "city") != "Chicago" {
		t.Errorf("rows wrong: %d rows, city[1]=%q", tb.NumRows(), tb.Value(1, "city"))
	}
}

func TestCSVTuplesStreamsMaps(t *testing.T) {
	src := NewCSV("Zip", strings.NewReader("zip,city\n90001,LA\n60601,Chicago\n"))
	var got []Tuple
	for tu, err := range src.Tuples(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tu)
	}
	if len(got) != 2 || got[0]["zip"] != "90001" || got[1]["city"] != "Chicago" {
		t.Errorf("tuples = %v", got)
	}
}

func TestCSVJaggedRecordIsParseError(t *testing.T) {
	src := NewCSV("Zip", strings.NewReader("zip,city\n90001\n"))
	var gotErr error
	for _, err := range src.Tuples(context.Background()) {
		if err != nil {
			gotErr = err
		}
	}
	var pe *ParseError
	if !errors.As(gotErr, &pe) {
		t.Fatalf("jagged record error = %v, want *ParseError", gotErr)
	}
	if pe.Source != "Zip" || pe.Record != 2 {
		t.Errorf("ParseError = %+v, want Source=Zip Record=2", pe)
	}
}

func TestCSVReaderSourceIsSingleShot(t *testing.T) {
	src := NewCSV("Zip", strings.NewReader("zip\n90001\n"))
	if _, err := Materialize(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	_, err := Materialize(context.Background(), src)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("second materialize = %v, want *ParseError", err)
	}
}

func TestCSVFileReiterableAndErrorsCarryPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(path, []byte("zip,city\n90001,LA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := CSVFile("Zip", path)
	for i := 0; i < 2; i++ {
		tb, err := Materialize(context.Background(), src)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if tb.NumRows() != 1 {
			t.Fatalf("iteration %d: rows = %d", i, tb.NumRows())
		}
	}

	missing := filepath.Join(dir, "missing.csv")
	_, err := Materialize(context.Background(), CSVFile("Zip", missing))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("missing file = %v, want *ParseError", err)
	}
	if pe.Path != missing || !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("ParseError = %+v, want path %q wrapping fs.ErrNotExist", pe, missing)
	}
	if !strings.Contains(pe.Error(), "Zip") || !strings.Contains(pe.Error(), missing) {
		t.Errorf("message %q must name the table and the path", pe.Error())
	}
}

func TestJSONLScalarsAndNulls(t *testing.T) {
	in := `{"zip":"90001","pop":12345,"ok":true,"note":null}
{"zip":"60601","pop":9.5,"ok":false}
`
	src := NewJSONL("Zip", strings.NewReader(in))
	var got []Tuple
	for tu, err := range src.Tuples(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tu)
	}
	if len(got) != 2 {
		t.Fatalf("tuples = %v", got)
	}
	if got[0]["pop"] != "12345" || got[0]["ok"] != "true" {
		t.Errorf("scalar stringification wrong: %v", got[0])
	}
	if _, present := got[0]["note"]; present {
		t.Error("null must map to an absent key")
	}

	tb, err := Materialize(context.Background(), NewJSONL("Zip", strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	// Sorted union of the keys actually seen: the always-null "note"
	// never becomes a column.
	if got := strings.Join(tb.Cols, ","); got != "ok,pop,zip" {
		t.Errorf("columns = %q, want sorted union of present keys", got)
	}
}

func TestJSONLNestedValueIsParseError(t *testing.T) {
	src := NewJSONL("Zip", strings.NewReader(`{"zip":"1"}`+"\n"+`{"zip":{"a":1}}`+"\n"))
	var gotErr error
	n := 0
	for _, err := range src.Tuples(context.Background()) {
		if err != nil {
			gotErr = err
		} else {
			n++
		}
	}
	var pe *ParseError
	if !errors.As(gotErr, &pe) || pe.Record != 2 || n != 1 {
		t.Fatalf("nested value: err=%v tuples=%d, want *ParseError at record 2 after 1 tuple", gotErr, n)
	}
}

func TestTableSourceRoundTrip(t *testing.T) {
	tb := relation.New("T", "a", "b")
	tb.Append("1", "x")
	tb.Append("2", "y")
	src := FromTable(tb)
	if got := strings.Join(src.Columns(), ","); got != "a,b" {
		t.Errorf("columns = %q", got)
	}
	out, err := Materialize(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if out != tb {
		t.Error("TableSource must materialize to the wrapped table without copying")
	}
	n := 0
	for tu, err := range src.Tuples(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if tu["a"] == "" {
			t.Errorf("tuple missing a: %v", tu)
		}
		n++
	}
	if n != 2 {
		t.Errorf("tuples = %d", n)
	}
}

func TestChanSourceCancellation(t *testing.T) {
	ch := make(chan Tuple) // never closed
	src := FromChan("live", []string{"a"}, ch)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		ch <- Tuple{"a": "1"}
		cancel()
	}()
	var tuples int
	var gotErr error
	for tu, err := range src.Tuples(ctx) {
		if err != nil {
			gotErr = err
			break
		}
		_ = tu
		tuples++
	}
	if tuples != 1 || !errors.Is(gotErr, context.Canceled) {
		t.Fatalf("tuples=%d err=%v, want 1 tuple then context.Canceled", tuples, gotErr)
	}
}

func TestMaterializeCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Materialize(ctx, CSVFile("Zip", "/nonexistent-but-irrelevant.csv"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
