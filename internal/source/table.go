package source

import (
	"context"
	"iter"

	"pfd/internal/relation"
)

// TableSource adapts an in-memory *relation.Table. It is re-iterable,
// and materializing it is free: ReadTable returns the wrapped table
// itself (not a copy — callers that mutate the result mutate the
// source).
type TableSource struct {
	t *relation.Table
}

// FromTable wraps a table.
func FromTable(t *relation.Table) *TableSource { return &TableSource{t: t} }

// Name returns the table name.
func (s *TableSource) Name() string { return s.t.Name }

// Columns returns the table's column names in order.
func (s *TableSource) Columns() []string { return append([]string(nil), s.t.Cols...) }

// Tuples yields each row as a column->value map.
func (s *TableSource) Tuples(ctx context.Context) iter.Seq2[Tuple, error] {
	return func(yield func(Tuple, error) bool) {
		for i := 0; i < s.t.NumRows(); i++ {
			if i%ctxCheckEvery == ctxCheckEvery-1 {
				if err := ctx.Err(); err != nil {
					yield(nil, err)
					return
				}
			}
			tuple := make(Tuple, len(s.t.Cols))
			for j, c := range s.t.Cols {
				tuple[c] = s.t.At(i, j)
			}
			if !yield(tuple, nil) {
				return
			}
		}
	}
}

// ReadTable returns the wrapped table without copying.
func (s *TableSource) ReadTable(ctx context.Context) (*relation.Table, error) {
	return s.t, ctx.Err()
}
