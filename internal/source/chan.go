package source

import (
	"context"
	"iter"
)

// ChanSource adapts a live tuple channel, for feeding the streaming
// validator from in-process producers. Iteration ends when the channel
// is closed, or with ctx.Err() when the context is canceled while the
// channel is still open — which is what makes Validate over a
// never-closing feed promptly cancellable.
type ChanSource struct {
	name string
	cols []string
	ch   <-chan Tuple
}

// FromChan wraps a channel. cols declares the column order for
// materialization and may be nil when the source is only ever streamed.
func FromChan(name string, cols []string, ch <-chan Tuple) *ChanSource {
	return &ChanSource{name: name, cols: append([]string(nil), cols...), ch: ch}
}

// Name returns the relation name.
func (s *ChanSource) Name() string { return s.name }

// Columns returns the declared column order (nil when undeclared).
func (s *ChanSource) Columns() []string {
	if s.cols == nil {
		return nil
	}
	return append([]string(nil), s.cols...)
}

// Tuples drains the channel until it closes or ctx is canceled.
func (s *ChanSource) Tuples(ctx context.Context) iter.Seq2[Tuple, error] {
	return func(yield func(Tuple, error) bool) {
		for {
			select {
			case tuple, ok := <-s.ch:
				if !ok {
					return
				}
				if !yield(tuple, nil) {
					return
				}
			case <-ctx.Done():
				yield(nil, ctx.Err())
				return
			}
		}
	}
}
