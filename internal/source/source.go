// Package source is the single ingestion layer of the v2 API: every
// way tuples enter the system — CSV files, JSONL streams, in-memory
// tables, live channels — is a Source, and every entry point (batch
// discovery, batch detection, the incremental Checker, the sharded
// stream engine) consumes Sources instead of growing its own reader.
//
// A Source yields tuples as an iter.Seq2[Tuple, error] sequence driven
// by a context: implementations observe ctx periodically and terminate
// the sequence with ctx.Err() when it is canceled, so long ingests stay
// cancellable without per-tuple channel plumbing. Malformed input
// surfaces as a *ParseError carrying the source name, the file path
// when known, and the 1-based record number.
package source

import (
	"context"
	"fmt"
	"iter"
	"sort"

	"pfd/internal/relation"
)

// A Tuple is one record: column name -> value. All values are strings,
// as everywhere in this codebase — patterns operate on the textual
// representation.
type Tuple = map[string]string

// ctxCheckEvery is how many records a source processes between context
// checks: frequent enough for prompt cancellation, rare enough to keep
// the per-record cost negligible.
const ctxCheckEvery = 512

// A Source yields the tuples of one relation.
type Source interface {
	// Name is the relation name used in reports and error messages.
	Name() string
	// Columns returns the column names in order when they are known
	// before iteration (tables, channels with a declared schema), or
	// nil when they only emerge during iteration (CSV headers, JSONL
	// keys).
	Columns() []string
	// Tuples returns an iterator over the records, in order. A non-nil
	// error terminates the sequence: a *ParseError for malformed
	// input, or ctx.Err() when the context is canceled mid-iteration.
	// The consumer may stop early by breaking out of the range loop.
	//
	// Whether a Source can be iterated more than once is
	// implementation-defined: file- and table-backed sources are
	// re-iterable, reader- and channel-backed ones are single-shot
	// (a second iteration yields a *ParseError).
	Tuples(ctx context.Context) iter.Seq2[Tuple, error]
}

// TableReader is implemented by sources that can produce the relation
// directly, preserving column order. Materialize uses it as a fast
// path; consumers that need a *relation.Table should call Materialize
// rather than type-asserting themselves.
type TableReader interface {
	ReadTable(ctx context.Context) (*relation.Table, error)
}

// A ParseError reports malformed input from a source.
type ParseError struct {
	// Source is the relation name the source was created with.
	Source string
	// Path is the backing file when the source is file-backed, "".
	Path string
	// Record is the 1-based record number (counting the header for
	// CSV), or 0 for container-level failures such as an unopenable
	// file.
	Record int
	// Err is the underlying cause.
	Err error
}

func (e *ParseError) Error() string {
	loc := e.Source
	if e.Path != "" {
		loc = fmt.Sprintf("%s (%s)", e.Source, e.Path)
	}
	if e.Record > 0 {
		return fmt.Sprintf("source %s: record %d: %v", loc, e.Record, e.Err)
	}
	return fmt.Sprintf("source %s: %v", loc, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// Materialize drains src into a Table. Sources that implement
// TableReader (CSV, tables) keep their native column order; otherwise
// the columns are the sorted union of the keys seen across all tuples,
// with absent keys materialized as "".
func Materialize(ctx context.Context, src Source) (*relation.Table, error) {
	if tr, ok := src.(TableReader); ok {
		return tr.ReadTable(ctx)
	}
	if cols := src.Columns(); cols != nil {
		t := relation.New(src.Name(), cols...)
		for tuple, err := range src.Tuples(ctx) {
			if err != nil {
				return nil, err
			}
			row := make([]string, len(cols))
			for i, c := range cols {
				row[i] = tuple[c]
			}
			t.Append(row...)
		}
		return t, ctx.Err()
	}
	// Columns unknown until the stream ends: buffer, then union.
	var buf []Tuple
	for tuple, err := range src.Tuples(ctx) {
		if err != nil {
			return nil, err
		}
		buf = append(buf, tuple)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var cols []string
	for _, tu := range buf {
		for k := range tu {
			if !seen[k] {
				seen[k] = true
				cols = append(cols, k)
			}
		}
	}
	sort.Strings(cols)
	t := relation.New(src.Name(), cols...)
	for _, tu := range buf {
		row := make([]string, len(cols))
		for i, c := range cols {
			row[i] = tu[c]
		}
		t.Append(row...)
	}
	return t, nil
}
