package source

import (
	"context"
	"iter"

	"pfd/internal/relation"
)

// SnapshotSource reads a .pfdt binary table snapshot
// (relation.WriteSnapshot / LoadSnapshot). Loading is a single
// sequential read that rebuilds the dictionary-encoded table without
// re-parsing CSV or re-interning strings, so materializing a snapshot
// source is the fast warmup path for pfd/pfdstream.
//
// The file is loaded lazily on first use and cached: the source is
// re-iterable, and ReadTable returns the cached table itself (not a
// copy — callers that mutate the result mutate the source, as with
// TableSource).
type SnapshotSource struct {
	name string // override; "" keeps the name stored in the snapshot
	path string
	t    *relation.Table
	err  error
}

// SnapshotFile names a .pfdt table snapshot. name overrides the
// relation name stored in the snapshot; pass "" to keep the stored
// name. Load failures (missing file, truncation, checksum or version
// mismatch — the typed relation.ErrSnapshot* errors) surface as a
// *ParseError from iteration or materialization, wrapping the cause.
func SnapshotFile(name, path string) *SnapshotSource {
	return &SnapshotSource{name: name, path: path}
}

// load reads and caches the snapshot on first use.
func (s *SnapshotSource) load() (*relation.Table, error) {
	if s.t == nil && s.err == nil {
		t, err := relation.LoadSnapshotFile(s.path)
		if err != nil {
			s.err = &ParseError{Source: s.displayName(), Path: s.path, Err: err}
		} else {
			if s.name != "" {
				t.Name = s.name
			}
			s.t = t
		}
	}
	return s.t, s.err
}

// displayName is the name for error messages before a successful load.
func (s *SnapshotSource) displayName() string {
	if s.name != "" {
		return s.name
	}
	return s.path
}

// Name returns the override name when one was given, and otherwise the
// relation name stored in the snapshot (the path, if the file cannot
// be loaded — the error itself surfaces from Tuples or ReadTable).
func (s *SnapshotSource) Name() string {
	if s.name != "" {
		return s.name
	}
	if t, err := s.load(); err == nil {
		return t.Name
	}
	return s.path
}

// Columns returns the snapshot's column names in order, or nil when
// the file cannot be loaded.
func (s *SnapshotSource) Columns() []string {
	t, err := s.load()
	if err != nil {
		return nil
	}
	return append([]string(nil), t.Cols...)
}

// Tuples yields each row as a column->value map.
func (s *SnapshotSource) Tuples(ctx context.Context) iter.Seq2[Tuple, error] {
	return func(yield func(Tuple, error) bool) {
		t, err := s.load()
		if err != nil {
			yield(nil, err)
			return
		}
		for i := 0; i < t.NumRows(); i++ {
			if i%ctxCheckEvery == ctxCheckEvery-1 {
				if err := ctx.Err(); err != nil {
					yield(nil, err)
					return
				}
			}
			tuple := make(Tuple, len(t.Cols))
			for j, c := range t.Cols {
				tuple[c] = t.At(i, j)
			}
			if !yield(tuple, nil) {
				return
			}
		}
	}
}

// ReadTable returns the loaded table without copying — the fast path
// Materialize takes for snapshot-backed sources.
func (s *SnapshotSource) ReadTable(ctx context.Context) (*relation.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.load()
}
