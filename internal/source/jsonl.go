package source

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"strconv"
)

// JSONLSource reads one flat JSON object per line, either from a file
// path (re-iterable) or from an io.Reader (single-shot). Non-string
// scalars are stringified; nested values terminate the sequence with a
// *ParseError. An explicit null is treated as an absent key — not as
// "" — so on the streaming path (Validate, the Checker) a null in a
// referenced column surfaces as a *MissingColumnError instead of
// silently folding an empty value into the consensus state. Batch
// entry points materialize the stream into a rectangular table first,
// where absent keys necessarily become "" cells (see Materialize).
type JSONLSource struct {
	backing
}

// NewJSONL wraps a reader of JSONL (one flat object per line). The
// source is single-shot.
func NewJSONL(name string, r io.Reader) *JSONLSource {
	return &JSONLSource{backing{name: name, r: r}}
}

// JSONLFile names a JSONL file. The file is opened at iteration time
// and reopened on each iteration, so the source is re-iterable.
func JSONLFile(name, path string) *JSONLSource {
	return &JSONLSource{backing{name: name, path: path}}
}

// Name returns the relation name.
func (s *JSONLSource) Name() string { return s.name }

// Columns returns nil: JSONL declares no schema, the keys emerge
// during iteration (Materialize unions them, sorted).
func (s *JSONLSource) Columns() []string { return nil }

// Tuples streams the objects as column->value maps.
func (s *JSONLSource) Tuples(ctx context.Context) iter.Seq2[Tuple, error] {
	return func(yield func(Tuple, error) bool) {
		r, cleanup, err := s.open()
		if err != nil {
			yield(nil, err)
			return
		}
		defer cleanup()
		dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))
		for rec := 1; ; rec++ {
			if rec%ctxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					yield(nil, err)
					return
				}
			}
			var raw map[string]any
			if err := dec.Decode(&raw); err == io.EOF {
				return
			} else if err != nil {
				yield(nil, &ParseError{Source: s.name, Path: s.path, Record: rec, Err: err})
				return
			}
			tuple := make(Tuple, len(raw))
			for k, v := range raw {
				switch x := v.(type) {
				case string:
					tuple[k] = x
				case float64:
					tuple[k] = strconv.FormatFloat(x, 'f', -1, 64)
				case bool:
					tuple[k] = strconv.FormatBool(x)
				case nil:
					// absent key; see type doc
				default:
					yield(nil, &ParseError{Source: s.name, Path: s.path, Record: rec,
						Err: fmt.Errorf("field %q is nested (%T); flat objects only", k, v)})
					return
				}
			}
			if !yield(tuple, nil) {
				return
			}
		}
	}
}
