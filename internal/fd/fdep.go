package fd

import (
	"math/rand"
	"sort"

	"pfd/internal/relation"
)

// FDepOptions tunes the FDep baseline.
type FDepOptions struct {
	// MaxPairs caps the number of tuple pairs used to build the negative
	// cover. 0 means exact (all n*(n-1)/2 pairs). The paper's Metanome
	// FDep is exact; the cap lets the 100k-row tables finish in the bench
	// harness and is documented in DESIGN.md. Sampling can only lose
	// negative evidence, so results stay a superset of the exact FDs.
	MaxPairs int
	// Seed drives pair sampling when MaxPairs truncates.
	Seed int64
}

// FDep discovers all minimal exact FDs by the negative-cover method of
// Flach & Savnik [14]: collect the agree-sets of tuple pairs, keep the
// maximal ones per RHS, and invert them into minimal LHS covers.
func FDep(t *relation.Table, opt FDepOptions) []FD {
	n := t.NumCols()
	rows := t.NumRows()
	if n == 0 || rows == 0 {
		return nil
	}
	// negCover[b] = set of agree-sets of pairs that differ on column b.
	negCover := make([]map[AttrSet]struct{}, n)
	for b := range negCover {
		negCover[b] = make(map[AttrSet]struct{})
	}
	// Two cells of one column agree iff their dictionary codes agree, so
	// the agree-set of a pair is integer comparisons over code vectors.
	colCodes := make([][]uint32, n)
	for c := 0; c < n; c++ {
		colCodes[c] = t.Codes(c)
	}
	addPair := func(r1, r2 int) {
		var agree AttrSet
		for c := 0; c < n; c++ {
			if colCodes[c][r1] == colCodes[c][r2] {
				agree = agree.Add(c)
			}
		}
		for b := 0; b < n; b++ {
			if !agree.Has(b) {
				negCover[b][agree] = struct{}{}
			}
		}
	}

	total := rows * (rows - 1) / 2
	if opt.MaxPairs <= 0 || total <= opt.MaxPairs {
		for i := 0; i < rows; i++ {
			for j := i + 1; j < rows; j++ {
				addPair(i, j)
			}
		}
	} else {
		rng := rand.New(rand.NewSource(opt.Seed))
		for k := 0; k < opt.MaxPairs; k++ {
			i := rng.Intn(rows)
			j := rng.Intn(rows)
			if i == j {
				continue
			}
			addPair(i, j)
		}
	}

	var out []FD
	for b := 0; b < n; b++ {
		universe := NewAttrSet().allBelow(n).Remove(b)
		for _, lhs := range minimalCovers(universe, maximalSets(negCover[b])) {
			out = append(out, FD{LHS: lhs, RHS: b})
		}
	}
	SortFDs(out)
	return out
}

// allBelow returns the set {0..n-1}.
func (s AttrSet) allBelow(n int) AttrSet {
	return s | (1<<uint(n) - 1)
}

// maximalSets keeps only the ⊆-maximal agree-sets.
func maximalSets(in map[AttrSet]struct{}) []AttrSet {
	sets := make([]AttrSet, 0, len(in))
	for s := range in {
		sets = append(sets, s)
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].Size() > sets[j].Size() })
	var out []AttrSet
	for _, s := range sets {
		max := true
		for _, m := range out {
			if s.SubsetOf(m) {
				max = false
				break
			}
		}
		if max {
			out = append(out, s)
		}
	}
	return out
}

// minimalCovers computes the minimal LHS sets X ⊆ universe such that X is
// not a subset of any violating agree-set: the FD X -> b then holds. This
// is the negative-cover inversion of FDep, a minimal-hypergraph-transversal
// computation over the complements of the agree-sets.
func minimalCovers(universe AttrSet, violating []AttrSet) []AttrSet {
	// Start with the empty candidate and refine: every candidate contained
	// in a violating set must grow by one attribute outside that set.
	cands := []AttrSet{0}
	for _, v := range violating {
		var next []AttrSet
		seen := map[AttrSet]struct{}{}
		push := func(x AttrSet) {
			if _, dup := seen[x]; !dup {
				seen[x] = struct{}{}
				next = append(next, x)
			}
		}
		for _, x := range cands {
			if !x.SubsetOf(v) {
				push(x)
				continue
			}
			for _, c := range (universe &^ v).Cols() {
				push(x.Add(c))
			}
		}
		cands = pruneNonMinimal(next)
	}
	// The empty LHS survives only when no pair differs on b, i.e. the
	// column is constant; it is kept and renders as "[] -> [b]".
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	return cands
}

// pruneNonMinimal removes candidates that are supersets of another.
func pruneNonMinimal(in []AttrSet) []AttrSet {
	sort.Slice(in, func(i, j int) bool { return in[i].Size() < in[j].Size() })
	var out []AttrSet
	for _, x := range in {
		minimal := true
		for _, m := range out {
			if m.SubsetOf(x) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, x)
		}
	}
	return out
}

// Holds checks an FD exactly on a table, for verification in tests.
func Holds(t *relation.Table, f FD) bool {
	seen := map[string]string{}
	for r := 0; r < t.NumRows(); r++ {
		key := ""
		for _, c := range f.LHS.Cols() {
			key += t.At(r, c) + "\x00"
		}
		if prev, ok := seen[key]; ok {
			if prev != t.At(r, f.RHS) {
				return false
			}
		} else {
			seen[key] = t.At(r, f.RHS)
		}
	}
	return true
}
