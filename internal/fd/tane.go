package fd

import (
	"sort"

	"pfd/internal/relation"
)

// TANEOptions tunes the level-wise discovery.
type TANEOptions struct {
	// MaxLHS caps the LHS size (0 = number of columns - 1).
	MaxLHS int
	// MaxError admits approximate FDs whose g3 error ratio (rows to
	// delete / total rows) is at most this value; 0 demands exact FDs.
	// The paper runs CFDFinder with confidence 0.995, i.e. MaxError 0.005.
	MaxError float64
}

// TANE discovers all minimal (approximate) functional dependencies of t by
// level-wise search over the attribute-set lattice with partition
// refinement, in the style of Huhtala et al. [19]. Minimality is enforced
// by pruning every superset of a found LHS for the same RHS.
func TANE(t *relation.Table, opt TANEOptions) []FD {
	n := t.NumCols()
	if n == 0 || t.NumRows() == 0 {
		return nil
	}
	maxLHS := opt.MaxLHS
	if maxLHS <= 0 || maxLHS > n-1 {
		maxLHS = n - 1
	}
	base := BasePartitions(t)
	maxRemoved := int(opt.MaxError * float64(t.NumRows()))

	var out []FD
	// found[rhs] records minimal LHS sets already found, for pruning.
	found := make([][]AttrSet, n)
	// Constant columns are determined by the empty LHS; report that and
	// prune every other FD into them, keeping results minimal.
	for b := 0; b < n; b++ {
		if base[b].NumClasses == 1 {
			out = append(out, FD{LHS: 0, RHS: b})
			found[b] = append(found[b], 0)
		}
	}
	holds := func(x AttrSet, px *Partition, b int) bool {
		if opt.MaxError <= 0 {
			return px.Refines(base[b])
		}
		return px.G3Error(base[b]) <= maxRemoved
	}

	// Level-wise over LHS sets of increasing size; partitions are memoized
	// per level to reuse products.
	level := make(map[AttrSet]*Partition, n)
	for c := 0; c < n; c++ {
		level[NewAttrSet(c)] = base[c]
	}
	for size := 1; size <= maxLHS; size++ {
		sets := make([]AttrSet, 0, len(level))
		for x := range level {
			sets = append(sets, x)
		}
		sort.Slice(sets, func(i, j int) bool { return sets[i] < sets[j] })
		for _, x := range sets {
			px := level[x]
			for b := 0; b < n; b++ {
				if x.Has(b) || covered(found[b], x) {
					continue
				}
				if holds(x, px, b) {
					out = append(out, FD{LHS: x, RHS: b})
					found[b] = append(found[b], x)
				}
			}
		}
		if size == maxLHS {
			break
		}
		next := make(map[AttrSet]*Partition, len(level)*n)
		for _, x := range sets {
			px := level[x]
			// Extend by attributes above the highest member to avoid
			// duplicate candidates.
			hi := highestBit(x)
			for c := hi + 1; c < n; c++ {
				nx := x.Add(c)
				// Key pruning: if X is already a key (one class per row),
				// every extension yields only non-minimal FDs.
				if px.NumClasses == t.NumRows() {
					continue
				}
				if _, ok := next[nx]; !ok {
					next[nx] = px.Product(base[c])
				}
			}
		}
		level = next
	}
	SortFDs(out)
	return out
}

// covered reports whether some already-found minimal LHS is a subset of x.
func covered(minimal []AttrSet, x AttrSet) bool {
	for _, m := range minimal {
		if m.SubsetOf(x) {
			return true
		}
	}
	return false
}

func highestBit(x AttrSet) int {
	hi := -1
	for _, c := range x.Cols() {
		hi = c
	}
	return hi
}
