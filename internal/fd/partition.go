package fd

import "pfd/internal/relation"

// This file implements TANE-style partitions. A partition of an attribute
// set X groups tuple ids by their X-projection. We keep the full (not
// stripped) grouping keyed by a dense class id per row, which makes
// partition products a single pass and makes the g3 error measure (the
// fraction of tuples that must be removed for X -> B to hold exactly)
// computable in linear time.

// Partition assigns each row a class id such that two rows share a class
// iff they agree on the underlying attribute set.
type Partition struct {
	ClassOf    []int32 // row -> class id (dense, 0-based)
	NumClasses int
}

// PartitionColumn builds the single-attribute partition of column c.
// The column's dictionary codes already group equal values, so the
// partition is a dense remap of the code vector — no string hashing.
func PartitionColumn(t *relation.Table, c int) *Partition {
	codes := t.Codes(c)
	remap := make([]int32, len(t.Dict(c)))
	for i := range remap {
		remap[i] = -1
	}
	p := &Partition{ClassOf: make([]int32, t.NumRows())}
	next := int32(0)
	for r, code := range codes {
		id := remap[code]
		if id < 0 {
			id = next
			remap[code] = id
			next++
		}
		p.ClassOf[r] = id
	}
	p.NumClasses = int(next)
	return p
}

// Product refines p by q: the result's classes are the non-empty
// intersections (π_X · π_Y = π_XY).
func (p *Partition) Product(q *Partition) *Partition {
	type pair struct{ a, b int32 }
	ids := make(map[pair]int32, p.NumClasses+q.NumClasses)
	out := &Partition{ClassOf: make([]int32, len(p.ClassOf))}
	for r := range p.ClassOf {
		k := pair{p.ClassOf[r], q.ClassOf[r]}
		id, ok := ids[k]
		if !ok {
			id = int32(len(ids))
			ids[k] = id
		}
		out.ClassOf[r] = id
	}
	out.NumClasses = len(ids)
	return out
}

// Refines reports whether every class of p is contained in one class of q
// — i.e. the exact FD X -> B holds, where p = π_X and q = π_B.
func (p *Partition) Refines(q *Partition) bool {
	rep := make([]int32, p.NumClasses)
	for i := range rep {
		rep[i] = -1
	}
	for r := range p.ClassOf {
		pc, qc := p.ClassOf[r], q.ClassOf[r]
		switch rep[pc] {
		case -1:
			rep[pc] = qc
		case qc:
		default:
			return false
		}
	}
	return true
}

// G3Error returns the minimum number of rows to delete so that the FD with
// LHS partition p and RHS partition q holds exactly: for every LHS class,
// all but the plurality RHS value must go.
func (p *Partition) G3Error(q *Partition) int {
	type pair struct{ a, b int32 }
	classTotal := make([]int, p.NumClasses)
	counts := make(map[pair]int, p.NumClasses*2)
	for r := range p.ClassOf {
		classTotal[p.ClassOf[r]]++
		counts[pair{p.ClassOf[r], q.ClassOf[r]}]++
	}
	best := make([]int, p.NumClasses)
	for k, n := range counts {
		if n > best[k.a] {
			best[k.a] = n
		}
	}
	removed := 0
	for c, tot := range classTotal {
		removed += tot - best[c]
	}
	return removed
}

// PartitionSet builds the partition of an arbitrary attribute set by
// folding single-column partitions with Product.
func PartitionSet(t *relation.Table, base []*Partition, x AttrSet) *Partition {
	var acc *Partition
	for _, c := range x.Cols() {
		if acc == nil {
			acc = base[c]
		} else {
			acc = acc.Product(base[c])
		}
	}
	return acc
}

// BasePartitions builds all single-attribute partitions of t.
func BasePartitions(t *relation.Table) []*Partition {
	out := make([]*Partition, t.NumCols())
	for c := range t.Cols {
		out[c] = PartitionColumn(t, c)
	}
	return out
}
