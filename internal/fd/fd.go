// Package fd implements the functional-dependency baselines the paper
// compares against (Section 5.1): FDep [Flach & Savnik 1999], via negative
// cover inversion, and a TANE-style level-wise partition algorithm
// [Huhtala et al. 1999] that also powers the embedded-FD checks of the PFD
// discovery lattice. Attribute sets are bitmasks, so relations are limited
// to 64 attributes — far beyond the paper's tables (5-9 columns).
package fd

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"pfd/internal/relation"
)

// AttrSet is a bitmask of column indices.
type AttrSet uint64

// NewAttrSet builds a set from column indices.
func NewAttrSet(idx ...int) AttrSet {
	var s AttrSet
	for _, i := range idx {
		s |= 1 << uint(i)
	}
	return s
}

// Has reports membership of column i.
func (s AttrSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Add returns s with column i added.
func (s AttrSet) Add(i int) AttrSet { return s | 1<<uint(i) }

// Remove returns s without column i.
func (s AttrSet) Remove(i int) AttrSet { return s &^ (1 << uint(i)) }

// Size returns the cardinality.
func (s AttrSet) Size() int { return bits.OnesCount64(uint64(s)) }

// SubsetOf reports s ⊆ t.
func (s AttrSet) SubsetOf(t AttrSet) bool { return s&^t == 0 }

// Cols lists the member column indices in ascending order.
func (s AttrSet) Cols() []int {
	out := make([]int, 0, s.Size())
	for i := 0; i < 64; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Names renders the set against a table's column names.
func (s AttrSet) Names(t *relation.Table) []string {
	cols := s.Cols()
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = t.Cols[c]
	}
	return out
}

// An FD is an embedded functional dependency X -> B in normal form.
type FD struct {
	LHS AttrSet
	RHS int
}

// String renders the FD against a table's column names.
func (f FD) String(t *relation.Table) string {
	return fmt.Sprintf("[%s] -> [%s]", strings.Join(f.LHS.Names(t), ","), t.Cols[f.RHS])
}

// SortFDs orders FDs deterministically (by RHS, then LHS mask).
func SortFDs(fds []FD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].RHS != fds[j].RHS {
			return fds[i].RHS < fds[j].RHS
		}
		return fds[i].LHS < fds[j].LHS
	})
}
