package fd

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"pfd/internal/relation"
)

func TestAttrSet(t *testing.T) {
	s := NewAttrSet(0, 3, 5)
	if s.Size() != 3 || !s.Has(3) || s.Has(1) {
		t.Errorf("AttrSet basics wrong: %v", s.Cols())
	}
	if got := s.Add(1).Size(); got != 4 {
		t.Errorf("Add = %d", got)
	}
	if got := s.Remove(3).Size(); got != 2 {
		t.Errorf("Remove = %d", got)
	}
	if !NewAttrSet(0).SubsetOf(s) || NewAttrSet(1).SubsetOf(s) {
		t.Error("SubsetOf wrong")
	}
	cols := s.Cols()
	if len(cols) != 3 || cols[0] != 0 || cols[2] != 5 {
		t.Errorf("Cols = %v", cols)
	}
}

// abcTable: A -> B holds, B -> A does not, C is a key.
func abcTable() *relation.Table {
	t := relation.New("T", "A", "B", "C")
	t.Append("a1", "b1", "c1")
	t.Append("a1", "b1", "c2")
	t.Append("a2", "b1", "c3")
	t.Append("a3", "b2", "c4")
	return t
}

func TestPartitionRefines(t *testing.T) {
	tb := abcTable()
	base := BasePartitions(tb)
	if !base[0].Refines(base[1]) {
		t.Error("A -> B must hold")
	}
	if base[1].Refines(base[0]) {
		t.Error("B -> A must not hold")
	}
	if !base[2].Refines(base[0]) || !base[2].Refines(base[1]) {
		t.Error("key C must determine everything")
	}
}

func TestPartitionProduct(t *testing.T) {
	tb := abcTable()
	base := BasePartitions(tb)
	ab := base[0].Product(base[1])
	if ab.NumClasses != 3 {
		t.Errorf("π_AB classes = %d, want 3", ab.NumClasses)
	}
	if got := PartitionSet(tb, base, NewAttrSet(0, 1)).NumClasses; got != 3 {
		t.Errorf("PartitionSet = %d classes", got)
	}
}

func TestG3Error(t *testing.T) {
	tb := relation.New("T", "A", "B")
	tb.Append("x", "1")
	tb.Append("x", "1")
	tb.Append("x", "2") // minority: one removal fixes A -> B
	tb.Append("y", "3")
	base := BasePartitions(tb)
	if got := base[0].G3Error(base[1]); got != 1 {
		t.Errorf("g3 = %d, want 1", got)
	}
	if got := base[1].G3Error(base[0]); got != 0 {
		t.Errorf("B -> A g3 = %d, want 0", got)
	}
}

func TestTANEFindsMinimalFDs(t *testing.T) {
	tb := abcTable()
	fds := TANE(tb, TANEOptions{})
	want := map[string]bool{}
	for _, f := range fds {
		want[f.String(tb)] = true
		if !Holds(tb, f) {
			t.Errorf("TANE reported non-holding FD %s", f.String(tb))
		}
	}
	if !want["[A] -> [B]"] {
		t.Errorf("missing A -> B in %v", want)
	}
	if !want["[C] -> [A]"] || !want["[C] -> [B]"] {
		t.Errorf("missing key FDs in %v", want)
	}
	// Non-minimal [A,C] -> B must not be reported.
	for _, f := range fds {
		if f.RHS == 1 && f.LHS.Size() > 1 && f.LHS.Has(0) {
			t.Errorf("non-minimal FD %s reported", f.String(tb))
		}
	}
}

func TestTANEApproximate(t *testing.T) {
	tb := relation.New("T", "A", "B")
	for i := 0; i < 99; i++ {
		tb.Append("x", "1")
	}
	tb.Append("x", "2") // 1% dirt
	for _, f := range TANE(tb, TANEOptions{}) {
		if f.RHS == 1 {
			t.Errorf("exact TANE found %s on dirty data", f.String(tb))
		}
	}
	fds := TANE(tb, TANEOptions{MaxError: 0.02})
	found := false
	for _, f := range fds {
		if f.RHS == 1 && f.LHS == NewAttrSet(0) {
			found = true
		}
	}
	if !found {
		t.Error("approximate TANE must tolerate 1% dirt")
	}
}

func TestFDepMatchesTANEExact(t *testing.T) {
	tb := abcTable()
	fdep := FDep(tb, FDepOptions{})
	tane := TANE(tb, TANEOptions{})
	if len(fdep) != len(tane) {
		t.Fatalf("FDep found %d FDs, TANE %d", len(fdep), len(tane))
	}
	for i := range fdep {
		if fdep[i] != tane[i] {
			t.Errorf("FD %d differs: %s vs %s", i, fdep[i].String(tb), tane[i].String(tb))
		}
	}
}

func TestQuickFDepAgreesWithTANE(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		tb := relation.New("T", "A", "B", "C", "D")
		rows := 4 + r.Intn(12)
		for i := 0; i < rows; i++ {
			tb.Append(
				strconv.Itoa(r.Intn(3)),
				strconv.Itoa(r.Intn(3)),
				strconv.Itoa(r.Intn(2)),
				strconv.Itoa(r.Intn(4)),
			)
		}
		fdep := FDep(tb, FDepOptions{})
		tane := TANE(tb, TANEOptions{})
		if len(fdep) != len(tane) {
			return false
		}
		for i := range fdep {
			if fdep[i] != tane[i] {
				return false
			}
			if !Holds(tb, fdep[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFDepSampledIsSuperset(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tb := relation.New("T", "A", "B", "C")
	for i := 0; i < 200; i++ {
		a := strconv.Itoa(r.Intn(10))
		tb.Append(a, "b"+a, strconv.Itoa(i))
	}
	exact := FDep(tb, FDepOptions{})
	sampled := FDep(tb, FDepOptions{MaxPairs: 500, Seed: 1})
	// Sampling loses only negative evidence: every exact FD must still be
	// implied by some sampled FD (a subset LHS with the same RHS).
	for _, e := range exact {
		ok := false
		for _, s := range sampled {
			if s.RHS == e.RHS && s.LHS.SubsetOf(e.LHS) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("sampled cover lost FD %s", e.String(tb))
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	empty := relation.New("E", "A")
	if got := TANE(empty, TANEOptions{}); got != nil {
		t.Errorf("TANE on empty = %v", got)
	}
	if got := FDep(empty, FDepOptions{}); got != nil {
		t.Errorf("FDep on empty = %v", got)
	}
}

func TestFDString(t *testing.T) {
	tb := abcTable()
	f := FD{LHS: NewAttrSet(0, 2), RHS: 1}
	if got := f.String(tb); got != "[A,C] -> [B]" {
		t.Errorf("String = %q", got)
	}
}

func TestQuickTANEMinimality(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	f := func() bool {
		tb := relation.New("T", "A", "B", "C", "D")
		rows := 6 + r.Intn(14)
		for i := 0; i < rows; i++ {
			tb.Append(
				strconv.Itoa(r.Intn(3)),
				strconv.Itoa(r.Intn(2)),
				strconv.Itoa(r.Intn(3)),
				strconv.Itoa(r.Intn(4)),
			)
		}
		fds := TANE(tb, TANEOptions{})
		for _, f1 := range fds {
			if !Holds(tb, f1) {
				return false
			}
			// Minimality: no proper subset of the LHS may also hold.
			for _, c := range f1.LHS.Cols() {
				sub := FD{LHS: f1.LHS.Remove(c), RHS: f1.RHS}
				if Holds(tb, sub) {
					t.Logf("non-minimal %s: subset %s holds", f1.String(tb), sub.String(tb))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
