// Package benchutil holds the streaming-throughput benchmark driver
// shared by bench_test.go (BenchmarkStreamCheck) and cmd/pfdbench
// (the stream/Check/T13 entries of -exp bench), so both measure the
// same workload through the same code path.
package benchutil

import (
	"sync"

	"pfd/internal/pattern"
	"pfd/internal/pfd"
	"pfd/internal/relation"
	"pfd/internal/stream"
)

// StreamPFDs are hand-built dependencies over the T13 transcript
// schema (the course prefix determines the department; the semester
// code embeds the year), so the stream benchmarks are independent of
// discovery output.
func StreamPFDs() []*pfd.PFD {
	courseDept := pfd.MustNew("T13", []string{"course_id"}, "dept", pfd.Row{
		LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(\LU{2})-\D{3}`))},
		RHS: pfd.Wildcard(),
	})
	semesterYear := pfd.MustNew("T13", []string{"semester"}, "year", pfd.Row{
		LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`\LU(\D{4})`))},
		RHS: pfd.Wildcard(),
	})
	return []*pfd.PFD{courseDept, semesterYear}
}

// TableTuples converts a table to the column->value maps the stream
// engine consumes.
func TableTuples(t *relation.Table) []map[string]string {
	out := make([]map[string]string, t.NumRows())
	for i := range out {
		tuple := make(map[string]string, len(t.Cols))
		for j, c := range t.Cols {
			tuple[c] = t.At(i, j)
		}
		out[i] = tuple
	}
	return out
}

// RunStreamPass pushes every tuple through a fresh engine with one
// producer goroutine per shard (the match phase runs producer-side)
// and waits for the Close drain.
func RunStreamPass(pfds []*pfd.PFD, tuples []map[string]string, shards int) {
	eng := stream.New(pfds, stream.Options{Shards: shards, BatchSize: 256, FlushInterval: -1})
	var wg sync.WaitGroup
	chunk := (len(tuples) + shards - 1) / shards
	for p := 0; p < shards; p++ {
		lo, hi := p*chunk, (p+1)*chunk
		if hi > len(tuples) {
			hi = len(tuples)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []map[string]string) {
			defer wg.Done()
			for _, tuple := range part {
				if err := eng.Submit(tuple); err != nil {
					panic(err)
				}
			}
		}(tuples[lo:hi])
	}
	wg.Wait()
	eng.Close()
}
