package inference

import (
	"strings"
	"testing"

	"pfd/internal/pfd"
)

func TestParseRule(t *testing.T) {
	r, err := ParseRule(`Name([name = (John\ )\A*] -> [gender = M])`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Relation != "Name" {
		t.Errorf("relation = %q", r.Relation)
	}
	c := r.LHS["name"]
	if c.IsWildcard() || !c.Match("John Smith") || c.Match("Susan Smith") {
		t.Errorf("LHS cell wrong: %s", c)
	}
	g := r.RHS["gender"]
	if v, ok := g.Constant(); !ok || v != "M" {
		t.Errorf("RHS cell = %s", g)
	}
}

func TestParseRuleWildcardAndMulti(t *testing.T) {
	r, err := ParseRule(`T([name = (\LU\LL*\ )\A*, country = _] -> [gender = _])`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.LHS) != 2 || !r.LHS["country"].IsWildcard() || !r.RHS["gender"].IsWildcard() {
		t.Errorf("parsed rule = %s", r)
	}
	// Bare attribute = wildcard.
	r, err = ParseRule(`T([zip = (\D{3})\D{2}, city] -> [state])`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.LHS["city"].IsWildcard() || !r.RHS["state"].IsWildcard() {
		t.Errorf("bare attributes must be wildcards: %s", r)
	}
}

func TestParseRuleQuantifierCommas(t *testing.T) {
	r, err := ParseRule(`T([zip = (\D{2,4})\D] -> [x = _])`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.LHS["zip"].Match("12345") {
		t.Errorf("brace-comma cell wrong: %s", r.LHS["zip"])
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		``,
		`NoParens`,
		`R(no arrow here)`,
		`R([a = x] -> )`,
		`R([] -> [b = y])`,
		`R([a = (unclosed] -> [b = y])`,
	}
	for _, src := range bad {
		if _, err := ParseRule(src); err == nil {
			t.Errorf("ParseRule(%q) succeeded", src)
		}
	}
}

func TestParseRuleRoundTripsThroughString(t *testing.T) {
	srcs := []string{
		`Name([name = (John\ )\A*] -> [gender = M])`,
		`Zip([zip = (900)\D{2}] -> [city = Los Angeles])`,
		`T([a = _] -> [b = _])`,
	}
	for _, src := range srcs {
		r := MustParseRule(src)
		back, err := ParseRule(r.String())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q: %v", src, r.String(), err)
		}
		if back.String() != r.String() {
			t.Errorf("round trip %q -> %q -> %q", src, r.String(), back.String())
		}
	}
}

func TestProveTransitiveChain(t *testing.T) {
	psi := []*Rule{
		MustParseRule(`Name([name = (John\ )\A*] -> [gender = M])`),
		MustParseRule(`Name([gender = M] -> [title = Mr])`),
	}
	goal := MustParseRule(`Name([name = (John\ )\A*] -> [title = Mr])`)
	proof := Prove(psi, goal)
	if proof == nil {
		t.Fatal("no proof found")
	}
	// The proof must end at the goal and use premises + transitivity.
	last := proof.Steps[len(proof.Steps)-1]
	if last.Rule != goal {
		t.Errorf("last step is %s", last.Rule)
	}
	text := proof.String()
	if !strings.Contains(text, string(AxTransitivity)) || !strings.Contains(text, string(AxPremise)) {
		t.Errorf("proof lacks expected axioms:\n%s", text)
	}
	if !strings.Contains(text, string(AxReflexivity)) {
		t.Errorf("proof must start from Reflexivity:\n%s", text)
	}
	// Every From reference points backwards.
	for i, s := range proof.Steps {
		for _, f := range s.From {
			if f >= i {
				t.Errorf("step %d references later step %d", i, f)
			}
		}
	}
}

func TestProveAgreesWithImplies(t *testing.T) {
	psi := []*Rule{
		MustParseRule(`Name([name = (John\ )\A*] -> [gender = M])`),
		MustParseRule(`Name([name = (\LU\LL*\ )\A*] -> [gender = _])`),
		MustParseRule(`Name([gender = M] -> [flag = 1])`),
	}
	goals := []string{
		`Name([name = (John\ )\A*] -> [flag = 1])`,
		`Name([name = (John\ )\A*] -> [gender = M])`,
		`Name([name = (Susan\ )\A*] -> [gender = F])`,
		`Name([name = (John\ )\A*] -> [flag = 2])`,
	}
	for _, src := range goals {
		g := MustParseRule(src)
		implied := Implies(psi, g)
		proved := Prove(psi, g) != nil
		if implied != proved {
			t.Errorf("goal %s: Implies=%v but Prove=%v", src, implied, proved)
		}
	}
}

func TestProveReductionPath(t *testing.T) {
	// Constant-RHS rule with a wildcard LHS attribute not in the goal's
	// LHS: Reduction drops it.
	psi := []*Rule{
		NewRule("R").
			WithLHS("a", cellP(`(x)`)).
			WithLHS("b", pfd.Wildcard()).
			WithRHS("c", cellP(`(k)`)),
	}
	goal := MustParseRule(`R([a = x] -> [c = k])`)
	proof := Prove(psi, goal)
	if proof == nil {
		t.Fatal("reduction-based proof not found")
	}
	if !strings.Contains(proof.String(), string(AxReduction)) {
		t.Errorf("expected a Reduction step:\n%s", proof)
	}
}
