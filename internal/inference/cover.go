package inference

// MinimalCover returns a subset of the rules with the same logical
// consequences under the closure of Figure 7: scanning first to last,
// a rule implied by the remaining rules is dropped (Section 3's
// minimal-cover reasoning task, the classical FD algorithm lifted to
// PFDs). Exact duplicates always collapse; beyond that the result is
// order-dependent and minimal rather than minimum, and — because
// Implies is sound but not complete through the Inconsistency-EFQ
// path — a rule kept by an incompleteness is a safe over-approximation,
// never a lost consequence. The input slice is not modified.
func MinimalCover(rules []*Rule) []*Rule {
	kept := append([]*Rule(nil), rules...)
	for i := 0; i < len(kept); {
		rest := make([]*Rule, 0, len(kept)-1)
		rest = append(rest, kept[:i]...)
		rest = append(rest, kept[i+1:]...)
		if Implies(rest, kept[i]) {
			kept = rest
			continue
		}
		i++
	}
	return kept
}
