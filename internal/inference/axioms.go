// Package inference implements the reasoning machinery of Section 3: the
// six inference axioms of Figure 3 (Reflexivity, Inconsistency-EFQ,
// Augmentation, Transitivity, Reduction, LHS-Generalization), the
// PFD-closure algorithm of Figure 7, implication checking, and the
// small-model consistency test of Theorem 3.
//
// Following the paper ("since tuples in Tp are independent from each
// other, it is sufficient to reason about R(X -> Y, tp) for each tp"),
// the unit of reasoning is a single-row PFD over named attributes.
package inference

import (
	"fmt"
	"sort"
	"strings"

	"pfd/internal/pattern"
	"pfd/internal/pfd"
)

// A Rule is a single-tableau-row PFD used by the inference system:
// X -> Y with one constrained pattern (or wildcard) per attribute on each
// side. Unlike pfd.PFD it permits multi-attribute RHS and overlapping
// X and Y, which the axioms need (e.g. Augmentation derives XA -> YA).
type Rule struct {
	Relation string
	// LHS and RHS map attribute names to cells. An attribute may appear
	// on both sides with different patterns (the paper's AL / AR).
	LHS map[string]pfd.Cell
	RHS map[string]pfd.Cell
}

// NewRule builds a rule; cells default to wildcard for attributes listed
// without patterns.
func NewRule(relation string) *Rule {
	return &Rule{Relation: relation, LHS: map[string]pfd.Cell{}, RHS: map[string]pfd.Cell{}}
}

// WithLHS adds an LHS attribute with its cell.
func (r *Rule) WithLHS(attr string, c pfd.Cell) *Rule {
	r.LHS[attr] = c
	return r
}

// WithRHS adds an RHS attribute with its cell.
func (r *Rule) WithRHS(attr string, c pfd.Cell) *Rule {
	r.RHS[attr] = c
	return r
}

// Clone deep-copies the rule's maps (cells are immutable).
func (r *Rule) Clone() *Rule {
	out := NewRule(r.Relation)
	for k, v := range r.LHS {
		out.LHS[k] = v
	}
	for k, v := range r.RHS {
		out.RHS[k] = v
	}
	return out
}

// String renders the rule in the paper's notation.
func (r *Rule) String() string {
	return fmt.Sprintf("%s([%s] -> [%s])", r.Relation, sideString(r.LHS), sideString(r.RHS))
}

func sideString(side map[string]pfd.Cell) string {
	attrs := make([]string, 0, len(side))
	for a := range side {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = fmt.Sprintf("%s = %s", a, side[a])
	}
	return strings.Join(parts, ", ")
}

// cellRestricts reports tp[A] ⊆ t'p[A]: equivalence under a refines
// equivalence under b. Wildcards compare whole values, i.e. the finest
// equivalence, so a wildcard refines everything and is refined only by
// full-equality cells.
func cellRestricts(a, b pfd.Cell) bool {
	switch {
	case a.IsWildcard() && b.IsWildcard():
		return true
	case a.IsWildcard():
		// Whole-value equality refines any pattern's equivalence provided
		// every value matches b's pattern — unknowable without the
		// pattern matching all strings; only \A*-like cells qualify.
		return pattern.LangContains(b.Pattern, anyStar)
	case b.IsWildcard():
		// b compares whole values; a refines that only if a does too.
		return a.Pattern.FullyConstrained() || a.Pattern.IsConstant()
	default:
		return pattern.Restricts(a.Pattern, b.Pattern)
	}
}

var anyStar = pattern.MustParse(`\A*`)

// Reflexivity derives R(X -> A, tp) for A in X with tp[AL] ⊆ tp[AR]
// (Figure 3). Given the rule's LHS, it returns X -> X with AR = AL.
func Reflexivity(relation string, lhs map[string]pfd.Cell) *Rule {
	out := NewRule(relation)
	for a, c := range lhs {
		out.LHS[a] = c
		out.RHS[a] = c // tp[AL] = tp[AR] trivially satisfies ⊆
	}
	return out
}

// Augmentation derives R(XA -> YA, t'p) from R(X -> Y, tp) for A not in
// XY, with t'p[AL] = t'p[AR] (Figure 3).
func Augmentation(r *Rule, attr string, c pfd.Cell) (*Rule, error) {
	if _, ok := r.LHS[attr]; ok {
		return nil, fmt.Errorf("inference: %q already in LHS", attr)
	}
	if _, ok := r.RHS[attr]; ok {
		return nil, fmt.Errorf("inference: %q already in RHS", attr)
	}
	out := r.Clone()
	out.LHS[attr] = c
	out.RHS[attr] = c
	return out, nil
}

// Transitivity derives R(X -> Z, t”p) from R(X -> Y, tp) and
// R(Y -> Z, t'p) when tp[A] ⊆ t'p[A] for every A in Y (Figure 3).
func Transitivity(r1, r2 *Rule) (*Rule, error) {
	for a, c2 := range r2.LHS {
		c1, ok := r1.RHS[a]
		if !ok {
			return nil, fmt.Errorf("inference: attribute %q of the second rule's LHS is not derived by the first", a)
		}
		if !cellRestricts(c1, c2) {
			return nil, fmt.Errorf("inference: pattern for %q does not subsume (%s ⊄ %s)", a, c1, c2)
		}
	}
	out := NewRule(r1.Relation)
	for a, c := range r1.LHS {
		out.LHS[a] = c
	}
	for a, c := range r2.RHS {
		out.RHS[a] = c
	}
	return out, nil
}

// Reduction drops a wildcard LHS attribute B when the (single) RHS cell is
// a constant (Figure 3, carried over from CFDs).
func Reduction(r *Rule, attr string) (*Rule, error) {
	c, ok := r.LHS[attr]
	if !ok {
		return nil, fmt.Errorf("inference: %q not in LHS", attr)
	}
	if !c.IsWildcard() {
		return nil, fmt.Errorf("inference: %q is not a wildcard", attr)
	}
	if len(r.LHS) < 2 {
		return nil, fmt.Errorf("inference: cannot reduce the only LHS attribute")
	}
	for a, rc := range r.RHS {
		if _, isConst := rc.Constant(); !isConst {
			return nil, fmt.Errorf("inference: RHS %q is not a constant", a)
		}
	}
	out := r.Clone()
	delete(out.LHS, attr)
	return out, nil
}

// LHSGeneralization combines two rules that agree everywhere except on
// one LHS attribute B, producing a rule whose B-cell accepts either
// pattern (Figure 3). The restricted pattern language has no union
// operator, so the combination succeeds only when one pattern's language
// contains the other's (the union is then the larger pattern) — otherwise
// the rules stay separate tableau rows, which is semantically equivalent.
func LHSGeneralization(r1, r2 *Rule, attr string) (*Rule, error) {
	c1, ok1 := r1.LHS[attr]
	c2, ok2 := r2.LHS[attr]
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("inference: %q missing from an LHS", attr)
	}
	for a, c := range r1.LHS {
		if a == attr {
			continue
		}
		if other, ok := r2.LHS[a]; !ok || !sameCell(c, other) {
			return nil, fmt.Errorf("inference: rules disagree on LHS %q", a)
		}
	}
	for a, c := range r1.RHS {
		other, ok := r2.RHS[a]
		if !ok || !sameCell(c, other) {
			return nil, fmt.Errorf("inference: rules disagree on RHS %q", a)
		}
	}
	union, err := cellUnion(c1, c2)
	if err != nil {
		return nil, err
	}
	out := r1.Clone()
	out.LHS[attr] = union
	return out, nil
}

func sameCell(a, b pfd.Cell) bool { return a.Equal(b) }

// cellUnion returns a cell matching s iff s matches either input.
func cellUnion(a, b pfd.Cell) (pfd.Cell, error) {
	if a.IsWildcard() || b.IsWildcard() {
		return pfd.Wildcard(), nil
	}
	if pattern.LangContains(a.Pattern, b.Pattern) {
		return a, nil
	}
	if pattern.LangContains(b.Pattern, a.Pattern) {
		return b, nil
	}
	return pfd.Cell{}, fmt.Errorf("inference: union of %s and %s is not expressible in the restricted pattern language", a, b)
}
