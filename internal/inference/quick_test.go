package inference

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pfd/internal/pattern"
	"pfd/internal/pfd"
)

// randomRule draws a small rule over a fixed attribute universe with
// pattern shapes from the paper.
func randomRule(r *rand.Rand) *Rule {
	attrs := []string{"a", "b", "c"}
	pats := []string{
		`(John\ )\A*`, `(\LU\LL*\ )\A*`, `(900)\D{2}`, `(\D{3})\D{2}`,
		`(M)`, `(F)`, `(\D{5})`,
	}
	cell := func() pfd.Cell {
		if r.Intn(4) == 0 {
			return pfd.Wildcard()
		}
		return pfd.Pat(pattern.MustParse(pats[r.Intn(len(pats))]))
	}
	rule := NewRule("R")
	lhs := attrs[r.Intn(len(attrs))]
	rule.WithLHS(lhs, cell())
	rhs := attrs[r.Intn(len(attrs))]
	for rhs == lhs {
		rhs = attrs[r.Intn(len(attrs))]
	}
	rule.WithRHS(rhs, cell())
	return rule
}

// TestQuickImpliesSoundAgainstCounterexample is the central soundness
// property of the reasoning stack: whenever the closure-based Implies
// accepts, the small-model search must fail to refute.
func TestQuickImpliesSoundAgainstCounterexample(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	f := func() bool {
		n := 1 + r.Intn(3)
		rules := make([]*Rule, n)
		for i := range rules {
			rules[i] = randomRule(r)
		}
		goal := randomRule(r)
		if !Implies(rules, goal) {
			return true
		}
		if ce := FindCounterexample(rules, goal); ce != nil {
			t.Logf("UNSOUND: rules=%v goal=%s ce=%+v", rules, goal, ce)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickProveMatchesImplies keeps the instrumented proof constructor
// in lockstep with the closure decision.
func TestQuickProveMatchesImplies(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	f := func() bool {
		n := 1 + r.Intn(3)
		rules := make([]*Rule, n)
		for i := range rules {
			rules[i] = randomRule(r)
		}
		goal := randomRule(r)
		implied := Implies(rules, goal)
		proof := Prove(rules, goal)
		if implied != (proof != nil) {
			t.Logf("mismatch: Implies=%v Prove=%v goal=%s", implied, proof != nil, goal)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickConsistencyWitnessSatisfies checks that every witness the
// consistency search returns actually satisfies the rules.
func TestQuickConsistencyWitnessSatisfies(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	f := func() bool {
		n := 1 + r.Intn(4)
		rules := make([]*Rule, n)
		for i := range rules {
			rules[i] = randomRule(r)
		}
		witness, ok := Consistent(rules)
		if !ok {
			return true // inconsistency has no cheap independent check here
		}
		return tupleSatisfies(rules, attrsOf(rules), witness)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickParsePrintRoundTrip fuzzes rule parse/print stability.
func TestQuickParsePrintRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	f := func() bool {
		rule := randomRule(r)
		back, err := ParseRule(rule.String())
		if err != nil {
			t.Logf("re-parse of %q: %v", rule.String(), err)
			return false
		}
		return back.String() == rule.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
