package inference

import "sort"

// This file implements the decision procedures of Theorems 2 and 3 via
// the paper's small-model properties: a set Ψ of PFDs is consistent iff
// some single tuple satisfies it, and Ψ does not imply ψ iff some
// two-tuple instance satisfies Ψ but violates ψ, with witness values of
// length bounded by the total pattern length. The NP/coNP "guess" is
// realized as bounded enumeration over a candidate pool per attribute:
// instantiations of every pattern mentioned for that attribute (minimal
// and minimal+1 repetitions of unbounded tokens) plus probe strings
// matching none. The pool realizes the small-model bound for the paper's
// pattern shapes; pathological rule sets beyond the pool read as
// inconsistent/unimplied, so the procedures are sound for "consistent"
// and "refuted" answers.

// maxTuples caps the Cartesian search.
const maxTuples = 200000

// attrsOf collects every attribute mentioned by the rules.
func attrsOf(rules []*Rule) []string {
	set := map[string]bool{}
	for _, r := range rules {
		for a := range r.LHS {
			set[a] = true
		}
		for a := range r.RHS {
			set[a] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// candidateValues builds the per-attribute value pool.
func candidateValues(rules []*Rule, attr string) []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, r := range rules {
		for a, c := range r.LHS {
			if a == attr && !c.IsWildcard() {
				for _, s := range c.Pattern.Instantiate() {
					add(s)
				}
			}
		}
		for a, c := range r.RHS {
			if a == attr && !c.IsWildcard() {
				for _, s := range c.Pattern.Instantiate() {
					add(s)
				}
			}
		}
	}
	// Probes that typically match no code/name/constant pattern.
	add("~")
	add("~~")
	add("")
	if len(out) > 60 {
		out = out[:60]
	}
	return out
}

// tupleSatisfies checks the single-tuple semantics: whenever the tuple
// matches every LHS cell of a rule, it must match every RHS cell.
// (With one tuple, the pair semantics t1=t2 is vacuous, so this is exactly
// {t} |= Ψ — the small-model check of Theorem 3.)
func tupleSatisfies(rules []*Rule, attrs []string, vals map[string]string) bool {
	for _, r := range rules {
		matches := true
		for a, c := range r.LHS {
			if !c.Match(vals[a]) {
				matches = false
				break
			}
		}
		if !matches {
			continue
		}
		for a, c := range r.RHS {
			if !c.Match(vals[a]) {
				return false
			}
		}
	}
	_ = attrs
	return true
}

// Consistent decides whether some nonempty instance satisfies all rules
// (Theorem 3), searching single-tuple witnesses over the candidate pools.
// It returns the witness tuple when consistent.
func Consistent(rules []*Rule) (map[string]string, bool) {
	attrs := attrsOf(rules)
	if len(attrs) == 0 {
		return map[string]string{}, true
	}
	pools := make([][]string, len(attrs))
	total := 1
	for i, a := range attrs {
		pools[i] = candidateValues(rules, a)
		total *= len(pools[i])
		if total > maxTuples {
			total = maxTuples
		}
	}
	vals := make(map[string]string, len(attrs))
	var search func(i, budget int) bool
	count := 0
	search = func(i, budget int) bool {
		if count >= maxTuples {
			return false
		}
		if i == len(attrs) {
			count++
			return tupleSatisfies(rules, attrs, vals)
		}
		for _, v := range pools[i] {
			vals[attrs[i]] = v
			if search(i+1, budget) {
				return true
			}
			if count >= maxTuples {
				return false
			}
		}
		return false
	}
	if search(0, maxTuples) {
		out := make(map[string]string, len(vals))
		for k, v := range vals {
			out[k] = v
		}
		return out, true
	}
	return nil, false
}

// Counterexample is a two-tuple instance refuting an implication.
type Counterexample struct {
	T1, T2 map[string]string
}

// FindCounterexample searches for a two-tuple instance satisfying every
// rule of Ψ but violating ψ — the coNP refutation of Theorem 2. It
// returns nil when no counterexample exists within the candidate pools
// (which, combined with Implies, decides implication for the paper's
// pattern shapes).
func FindCounterexample(rules []*Rule, psi *Rule) *Counterexample {
	all := append(append([]*Rule{}, rules...), psi)
	attrs := attrsOf(all)
	pools := make([][]string, len(attrs))
	for i, a := range attrs {
		pools[i] = candidateValues(all, a)
	}
	t1 := make(map[string]string, len(attrs))
	t2 := make(map[string]string, len(attrs))
	count := 0
	var search func(i int, second bool) bool
	check := func() bool {
		if !pairSatisfies(rules, t1, t2) {
			return false
		}
		return !pairSatisfiesRule(psi, t1, t2)
	}
	search = func(i int, second bool) bool {
		if count >= maxTuples {
			return false
		}
		cur := t1
		if second {
			cur = t2
		}
		if i == len(attrs) {
			if !second {
				return search(0, true)
			}
			count++
			return check()
		}
		for _, v := range pools[i] {
			cur[attrs[i]] = v
			if search(i+1, second) {
				return true
			}
			if count >= maxTuples {
				return false
			}
		}
		return false
	}
	if search(0, false) {
		return &Counterexample{T1: copyMap(t1), T2: copyMap(t2)}
	}
	return nil
}

func copyMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// pairSatisfies checks {t1, t2} |= Ψ.
func pairSatisfies(rules []*Rule, t1, t2 map[string]string) bool {
	for _, r := range rules {
		if !pairSatisfiesRule(r, t1, t2) {
			return false
		}
	}
	return true
}

// pairSatisfiesRule implements the Section 2.2 semantics on a two-tuple
// instance: single-tuple checks for each tuple, and the pair check when
// both tuples match and are equivalent on every LHS cell.
func pairSatisfiesRule(r *Rule, t1, t2 map[string]string) bool {
	for _, t := range []map[string]string{t1, t2} {
		if !singleSatisfiesRule(r, t) {
			return false
		}
	}
	agree := true
	for a, c := range r.LHS {
		if !c.Match(t1[a]) || !c.Match(t2[a]) || !c.Equivalent(t1[a], t2[a]) {
			agree = false
			break
		}
	}
	if !agree {
		return true
	}
	for a, c := range r.RHS {
		if !c.Match(t1[a]) || !c.Match(t2[a]) || !c.Equivalent(t1[a], t2[a]) {
			return false
		}
	}
	return true
}

// singleSatisfiesRule applies the constant-row single-tuple semantics.
func singleSatisfiesRule(r *Rule, t map[string]string) bool {
	constant := len(r.LHS) > 0
	for _, c := range r.LHS {
		if _, ok := c.Constant(); !ok {
			constant = false
			break
		}
	}
	if !constant {
		return true
	}
	for a, c := range r.LHS {
		if !c.Match(t[a]) {
			return true
		}
	}
	for a, c := range r.RHS {
		if !c.Match(t[a]) {
			return false
		}
	}
	return true
}
