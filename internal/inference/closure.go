package inference

import (
	"sort"

	"pfd/internal/pfd"
)

// This file implements the PFD-closure algorithm of Figure 7 and the
// closure-based implication test. The implementation covers trigger
// conditions (a.i) — patterns in the closure subsume the rule's LHS
// patterns — and (b) — constant RHS with wildcard patterns on the missing
// LHS attributes. Condition (a.ii) (extension through values that are
// inconsistent w.r.t. Ψ, the Inconsistency-EFQ path) requires the
// consistency oracle on derived sub-languages and is intentionally not
// wired into the closure; Implies is therefore sound but may miss
// implications that hold only by ex-falso reasoning. FindCounterexample
// provides the complementary small-model refutation of Theorem 2.

// ClosureItem is one element of the PFD-closure: an attribute with the
// tightest derived cell.
type ClosureItem struct {
	Attr string
	Cell pfd.Cell
}

// Closure computes (X, tp[X])^Ψ: all attribute/pattern pairs derivable
// from the given LHS cells under the rules (Figure 7).
func Closure(rules []*Rule, lhs map[string]pfd.Cell) map[string]pfd.Cell {
	// Decompose rules to single-RHS units (Figure 7 lines 1-3).
	type unit struct {
		lhs map[string]pfd.Cell
		a   string
		c   pfd.Cell
	}
	var unused []unit
	for _, r := range rules {
		attrs := make([]string, 0, len(r.RHS))
		for a := range r.RHS {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			unused = append(unused, unit{lhs: r.LHS, a: a, c: r.RHS[a]})
		}
	}

	closure := make(map[string]pfd.Cell, len(lhs))
	for a, c := range lhs {
		closure[a] = c
	}

	used := make([]bool, len(unused))
	for changed := true; changed; {
		changed = false
		for i, u := range unused {
			if used[i] {
				continue
			}
			if !triggered(u.lhs, u.c, closure) {
				continue
			}
			used[i] = true
			changed = true
			if cur, ok := closure[u.a]; !ok {
				closure[u.a] = u.c // line 9
			} else if cellRestricts(u.c, cur) && !sameCell(u.c, cur) {
				closure[u.a] = u.c // lines 10-11: tighter pattern wins
			}
		}
	}
	return closure
}

// triggered implements the extension condition of Figure 7 line 6 for one
// single-RHS unit (Y -> A, tq).
func triggered(ruleLHS map[string]pfd.Cell, rhs pfd.Cell, closure map[string]pfd.Cell) bool {
	// Condition (a): every Y attribute appears in the closure with a cell
	// whose equivalence refines the rule's.
	all := true
	for a, c := range ruleLHS {
		w, ok := closure[a]
		if !ok || !cellRestricts(w, c) {
			all = false
			break
		}
	}
	if all {
		return true
	}
	// Condition (b): constant RHS, and every Y attribute missing from the
	// closure carries a wildcard pattern (Reduction reasoning).
	if _, isConst := rhs.Constant(); !isConst {
		return false
	}
	for a, c := range ruleLHS {
		if _, ok := closure[a]; ok {
			if !cellRestricts(closure[a], c) {
				return false
			}
			continue
		}
		if !c.IsWildcard() {
			return false
		}
	}
	return true
}

// Implies reports whether Ψ logically implies the single-row PFD ψ, using
// the PFD-closure: every RHS attribute of ψ must be derivable with a cell
// at least as tight as ψ demands. The test is sound; see the file comment
// for the (a.ii) caveat on completeness.
func Implies(rules []*Rule, psi *Rule) bool {
	closure := Closure(rules, psi.LHS)
	for a, want := range psi.RHS {
		got, ok := closure[a]
		if !ok || !cellRestricts(got, want) {
			return false
		}
	}
	return true
}

// Items returns the closure as a sorted slice for deterministic display.
func Items(closure map[string]pfd.Cell) []ClosureItem {
	out := make([]ClosureItem, 0, len(closure))
	for a, c := range closure {
		out = append(out, ClosureItem{Attr: a, Cell: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Attr < out[j].Attr })
	return out
}
