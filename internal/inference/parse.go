package inference

import (
	"fmt"
	"strings"

	"pfd/internal/pfd"
)

// ParseRule reads the paper's textual constraint notation:
//
//	Name([name = (John\ )\A*] -> [gender = M])
//	Zip([zip = (\D{3})\D{2}] -> [city = _])
//
// Each side is a bracketed, comma-separated list of "attr = cell", where
// a cell is '_' (the unnamed variable ⊥), a constrained pattern in the
// pattern syntax, or — when it contains no pattern meta-runes — a bare
// constant treated as a fully-constrained literal (M above).
func ParseRule(src string) (*Rule, error) {
	s := strings.TrimSpace(src)
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("inference: rule %q: want Relation([...] -> [...])", src)
	}
	rel := strings.TrimSpace(s[:open])
	body := s[open+1 : len(s)-1]
	lhsPart, rhsPart, found := cutArrow(body)
	if !found {
		return nil, fmt.Errorf("inference: rule %q: missing ->", src)
	}
	r := NewRule(rel)
	if err := parseSide(lhsPart, r.LHS); err != nil {
		return nil, fmt.Errorf("inference: rule %q LHS: %w", src, err)
	}
	if err := parseSide(rhsPart, r.RHS); err != nil {
		return nil, fmt.Errorf("inference: rule %q RHS: %w", src, err)
	}
	if len(r.LHS) == 0 || len(r.RHS) == 0 {
		return nil, fmt.Errorf("inference: rule %q: empty side", src)
	}
	return r, nil
}

// MustParseRule is ParseRule that panics, for tests and examples.
func MustParseRule(src string) *Rule {
	r, err := ParseRule(src)
	if err != nil {
		panic(err)
	}
	return r
}

// cutArrow splits at the top-level "->" (outside brackets, escape
// pairs skipped — rendered cells escape the grammar delimiters).
func cutArrow(s string) (string, string, bool) {
	depth := 0
	for i := 0; i+1 < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip the escaped byte
		case '[':
			depth++
		case ']':
			depth--
		case '-':
			if depth == 0 && s[i+1] == '>' {
				return s[:i], s[i+2:], true
			}
		}
	}
	return "", "", false
}

// parseSide reads "[a = cell, b = cell]" into the map.
func parseSide(s string, into map[string]pfd.Cell) error {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return fmt.Errorf("want [attr = cell, ...], got %q", s)
	}
	body := s[1 : len(s)-1]
	for _, item := range splitTop(body) {
		attr, cellSrc, found := strings.Cut(item, "=")
		if !found {
			// A bare attribute name means the unnamed variable.
			name := strings.TrimSpace(item)
			if name == "" {
				continue
			}
			into[name] = pfd.Wildcard()
			continue
		}
		name := strings.TrimSpace(attr)
		cell, err := parseCell(strings.TrimSpace(cellSrc))
		if err != nil {
			return fmt.Errorf("attribute %q: %w", name, err)
		}
		into[name] = cell
	}
	return nil
}

// splitTop splits on commas not inside braces (pattern {N} quantifiers)
// and not escaped.
func splitTop(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped rune
		case '{':
			depth++
		case '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// parseCell reads one tableau cell via the shared grammar
// (pfd.ParseCell): '_'/'⊥' wildcard, pattern syntax, or a bare
// constant treated as a fully-constrained literal.
func parseCell(s string) (pfd.Cell, error) {
	return pfd.ParseCell(s)
}
