package inference

import "pfd/internal/pfd"

// FromPFD converts a normal-form PFD into inference rules, one per
// tableau row (the paper reasons per tableau tuple: "it is sufficient to
// reason about R(X -> Y, tp) for each tp ∈ Tp"). The bridge lets the
// reasoning stack consume discovery output directly — e.g. checking a
// discovered constraint set for consistency before deploying it.
func FromPFD(p *pfd.PFD) []*Rule {
	out := make([]*Rule, 0, len(p.Tableau))
	for _, row := range p.Tableau {
		r := NewRule(p.Relation)
		for i, a := range p.LHS {
			r.LHS[a] = row.LHS[i]
		}
		r.RHS[p.RHS] = row.RHS
		out = append(out, r)
	}
	return out
}

// FromPFDs flattens a set of PFDs into rules.
func FromPFDs(pfds []*pfd.PFD) []*Rule {
	var out []*Rule
	for _, p := range pfds {
		out = append(out, FromPFD(p)...)
	}
	return out
}
