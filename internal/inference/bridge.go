package inference

import (
	"fmt"
	"sort"
	"strings"

	"pfd/internal/pfd"
)

// FromPFD converts a normal-form PFD into inference rules, one per
// tableau row (the paper reasons per tableau tuple: "it is sufficient to
// reason about R(X -> Y, tp) for each tp ∈ Tp"). The bridge lets the
// reasoning stack consume discovery output directly — e.g. checking a
// discovered constraint set for consistency before deploying it.
func FromPFD(p *pfd.PFD) []*Rule {
	out := make([]*Rule, 0, len(p.Tableau))
	for _, row := range p.Tableau {
		r := NewRule(p.Relation)
		for i, a := range p.LHS {
			r.LHS[a] = row.LHS[i]
		}
		r.RHS[p.RHS] = row.RHS
		out = append(out, r)
	}
	return out
}

// FromPFDs flattens a set of PFDs into rules.
func FromPFDs(pfds []*pfd.PFD) []*Rule {
	var out []*Rule
	for _, p := range pfds {
		out = append(out, FromPFD(p)...)
	}
	return out
}

// ToPFDs is the inverse bridge: it folds inference rules back into
// normal-form PFDs. Multi-attribute RHS rules decompose into one unit
// per RHS attribute (restriction iv of §4.2, sorted for determinism),
// and units sharing a relation, LHS attribute set, and RHS attribute
// merge into one PFD with a multi-row tableau, in first-appearance
// order. A rule whose RHS attribute also appears on its LHS has no
// normal form (pfd.New rejects trivial dependencies) and is an error.
func ToPFDs(rules []*Rule) ([]*pfd.PFD, error) {
	type group struct {
		relation string
		lhs      []string
		rhs      string
		rows     []pfd.Row
	}
	var order []string
	groups := map[string]*group{}
	for _, r := range rules {
		lhsAttrs := make([]string, 0, len(r.LHS))
		for a := range r.LHS {
			lhsAttrs = append(lhsAttrs, a)
		}
		sort.Strings(lhsAttrs)
		if len(lhsAttrs) == 0 {
			return nil, fmt.Errorf("inference: rule %s has an empty LHS", r)
		}
		rhsAttrs := make([]string, 0, len(r.RHS))
		for a := range r.RHS {
			rhsAttrs = append(rhsAttrs, a)
		}
		sort.Strings(rhsAttrs)
		for _, b := range rhsAttrs {
			if _, onLHS := r.LHS[b]; onLHS {
				return nil, fmt.Errorf("inference: rule %s: attribute %q appears on both sides; no normal form", r, b)
			}
			key := r.Relation + "\x00" + strings.Join(lhsAttrs, "\x00") + "\x00\x00" + b
			g, ok := groups[key]
			if !ok {
				g = &group{relation: r.Relation, lhs: lhsAttrs, rhs: b}
				groups[key] = g
				order = append(order, key)
			}
			cells := make([]pfd.Cell, len(lhsAttrs))
			for i, a := range lhsAttrs {
				cells[i] = r.LHS[a]
			}
			g.rows = append(g.rows, pfd.Row{LHS: cells, RHS: r.RHS[b]})
		}
	}
	out := make([]*pfd.PFD, 0, len(order))
	for _, key := range order {
		g := groups[key]
		p, err := pfd.New(g.relation, g.lhs, g.rhs, g.rows...)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
