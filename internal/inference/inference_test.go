package inference

import (
	"strings"
	"testing"

	"pfd/internal/pattern"
	"pfd/internal/pfd"
)

func cellP(src string) pfd.Cell { return pfd.Pat(pattern.MustParse(src)) }

// johnRule: Name([name = (John\ )\A*] -> [gender = M])
func johnRule() *Rule {
	return NewRule("Name").
		WithLHS("name", cellP(`(John\ )\A*`)).
		WithRHS("gender", cellP(`(M)`))
}

// firstNameRule: Name([name = (\LU\LL*\ )\A*] -> [gender = ⊥]) (λ4)
func firstNameRule() *Rule {
	return NewRule("Name").
		WithLHS("name", cellP(`(\LU\LL*\ )\A*`)).
		WithRHS("gender", pfd.Wildcard())
}

func TestReflexivity(t *testing.T) {
	lhs := map[string]pfd.Cell{"name": cellP(`(John\ )\A*`)}
	r := Reflexivity("Name", lhs)
	if !sameCell(r.RHS["name"], lhs["name"]) {
		t.Errorf("Reflexivity RHS = %s", r.RHS["name"])
	}
	// The derived rule is trivially implied by the empty set.
	if !Implies(nil, r) {
		t.Error("X -> X must be implied by the empty set")
	}
}

func TestAugmentation(t *testing.T) {
	r, err := Augmentation(johnRule(), "zip", pfd.Wildcard())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.LHS["zip"]; !ok {
		t.Error("zip missing from LHS")
	}
	if !sameCell(r.LHS["zip"], r.RHS["zip"]) {
		t.Error("augmented attribute must have t'p[AL] = t'p[AR]")
	}
	if _, err := Augmentation(johnRule(), "name", pfd.Wildcard()); err == nil {
		t.Error("augmenting an existing attribute must fail")
	}
}

func TestTransitivity(t *testing.T) {
	// zip -> city (constant prefix), city -> state via containment.
	r1 := NewRule("Z").
		WithLHS("zip", cellP(`(900)\D{2}`)).
		WithRHS("city", cellP(`(Los\ Angeles)`))
	r2 := NewRule("Z").
		WithLHS("city", cellP(`(\A*)`)). // any city, fully constrained
		WithRHS("state", cellP(`(CA)`))
	out, err := Transitivity(r1, r2)
	if err != nil {
		t.Fatalf("Transitivity: %v", err)
	}
	if _, ok := out.LHS["zip"]; !ok {
		t.Error("result LHS must be the first rule's LHS")
	}
	if _, ok := out.RHS["state"]; !ok {
		t.Error("result RHS must be the second rule's RHS")
	}
	// Patterns that do not subsume must fail: city constant "Chicago"
	// does not contain "Los Angeles".
	r3 := NewRule("Z").
		WithLHS("city", cellP(`(Chicago)`)).
		WithRHS("state", cellP(`(IL)`))
	if _, err := Transitivity(r1, r3); err == nil {
		t.Error("non-subsuming transitivity must fail")
	}
}

func TestReduction(t *testing.T) {
	r := NewRule("R").
		WithLHS("a", cellP(`(x)`)).
		WithLHS("b", pfd.Wildcard()).
		WithRHS("c", cellP(`(k)`))
	out, err := Reduction(r, "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.LHS["b"]; ok {
		t.Error("b must be dropped")
	}
	if _, err := Reduction(r, "a"); err == nil {
		t.Error("reducing a non-wildcard must fail")
	}
	vr := NewRule("R").
		WithLHS("a", cellP(`(x)`)).
		WithLHS("b", pfd.Wildcard()).
		WithRHS("c", pfd.Wildcard())
	if _, err := Reduction(vr, "b"); err == nil {
		t.Error("reduction requires a constant RHS")
	}
}

func TestLHSGeneralization(t *testing.T) {
	// Two rules identical except the zip prefix: (900)\D{2} vs (9000)\D.
	// L((900)\D{2}) contains L((9000)\D), so the union is the former.
	r1 := NewRule("Z").
		WithLHS("zip", cellP(`(900)\D{2}`)).
		WithLHS("x", cellP(`(k)`)).
		WithRHS("city", cellP(`(LA)`))
	r2 := NewRule("Z").
		WithLHS("zip", cellP(`(9000)\D`)).
		WithLHS("x", cellP(`(k)`)).
		WithRHS("city", cellP(`(LA)`))
	out, err := LHSGeneralization(r1, r2, "zip")
	if err != nil {
		t.Fatal(err)
	}
	if !out.LHS["zip"].Pattern.Equal(pattern.MustParse(`(900)\D{2}`)) {
		t.Errorf("union = %s", out.LHS["zip"])
	}
	// Disjoint languages are not expressible.
	r3 := NewRule("Z").
		WithLHS("zip", cellP(`(606)\D{2}`)).
		WithLHS("x", cellP(`(k)`)).
		WithRHS("city", cellP(`(LA)`))
	if _, err := LHSGeneralization(r1, r3, "zip"); err == nil {
		t.Error("disjoint union must fail in the restricted language")
	}
	// Rules disagreeing elsewhere must fail.
	r4 := r2.Clone()
	r4.RHS["city"] = cellP(`(NY)`)
	if _, err := LHSGeneralization(r1, r4, "zip"); err == nil {
		t.Error("rules with different RHS must not combine")
	}
}

func TestClosureAndImplies(t *testing.T) {
	// Ψ: (John )\A* -> M; (M) -> (Male-ish flag). Transitive closure must
	// derive the flag from the name.
	psi := []*Rule{
		johnRule(),
		NewRule("Name").WithLHS("gender", cellP(`(M)`)).WithRHS("flag", cellP(`(1)`)),
	}
	closure := Closure(psi, map[string]pfd.Cell{"name": cellP(`(John\ )\A*`)})
	if c, ok := closure["gender"]; !ok {
		t.Fatalf("gender not derived; closure = %v", Items(closure))
	} else if s, _ := c.Constant(); s != "M" {
		t.Errorf("gender cell = %s", c)
	}
	if _, ok := closure["flag"]; !ok {
		t.Errorf("flag not derived; closure = %v", Items(closure))
	}
	goal := NewRule("Name").
		WithLHS("name", cellP(`(John\ )\A*`)).
		WithRHS("flag", cellP(`(1)`))
	if !Implies(psi, goal) {
		t.Error("Ψ must imply name -> flag")
	}
	bad := NewRule("Name").
		WithLHS("name", cellP(`(John\ )\A*`)).
		WithRHS("flag", cellP(`(2)`))
	if Implies(psi, bad) {
		t.Error("Ψ must not imply flag = 2")
	}
}

func TestImpliesRestrictedLHS(t *testing.T) {
	// A more specific LHS still triggers the rule: (John )\A* refines
	// (\LU\LL*\ )\A*, so first-name rules fire for John.
	psi := []*Rule{firstNameRule()}
	goal := NewRule("Name").
		WithLHS("name", cellP(`(John\ )\A*`)).
		WithRHS("gender", pfd.Wildcard())
	if !Implies(psi, goal) {
		t.Error("restricted LHS must inherit the variable dependency")
	}
}

func TestConsistency(t *testing.T) {
	// Consistent set: the paper's λ1, λ3.
	ok := []*Rule{
		johnRule(),
		NewRule("Z").WithLHS("zip", cellP(`(900)\D{2}`)).WithRHS("city", cellP(`(Los\ Angeles)`)),
	}
	if _, consistent := Consistent(ok); !consistent {
		t.Error("λ1+λ3 must be consistent")
	}
	// Inconsistent: gender must be both M and F for the same constant LHS.
	bad := []*Rule{
		johnRule(),
		NewRule("Name").WithLHS("name", cellP(`(John\ )\A*`)).WithRHS("gender", cellP(`(F)`)),
		// Force every name to start with John: name must match the LHS.
		NewRule("Name").WithLHS("name", pfd.Wildcard()).WithRHS("name", cellP(`(John\ )\A*`)),
	}
	if w, consistent := Consistent(bad); consistent {
		t.Errorf("contradictory set read as consistent, witness %v", w)
	}
	// The empty set is consistent.
	if _, consistent := Consistent(nil); !consistent {
		t.Error("empty set must be consistent")
	}
}

func TestFindCounterexample(t *testing.T) {
	// Ψ = {John -> M} does not imply Susan -> F; two tuples named Susan
	// with different genders satisfy Ψ and violate the goal.
	psi := []*Rule{johnRule()}
	goal := NewRule("Name").
		WithLHS("name", cellP(`(Susan\ )\A*`)).
		WithRHS("gender", cellP(`(F)`))
	ce := FindCounterexample(psi, goal)
	if ce == nil {
		t.Fatal("counterexample must exist")
	}
	if !pairSatisfies(psi, ce.T1, ce.T2) {
		t.Error("counterexample must satisfy Ψ")
	}
	if pairSatisfiesRule(goal, ce.T1, ce.T2) {
		t.Error("counterexample must violate the goal")
	}
	// Implied goals have no counterexample.
	implied := NewRule("Name").
		WithLHS("name", cellP(`(John\ )\A*`)).
		WithRHS("gender", cellP(`(M)`))
	if ce := FindCounterexample(psi, implied); ce != nil {
		t.Errorf("implied goal refuted: %+v", ce)
	}
}

func TestSoundnessClosureVsCounterexample(t *testing.T) {
	// Whatever Implies accepts must never be refutable by the small-model
	// search — the two procedures approach Theorem 2 from both sides.
	psi := []*Rule{
		johnRule(),
		firstNameRule(),
		NewRule("Name").WithLHS("gender", cellP(`(M)`)).WithRHS("flag", cellP(`(1)`)),
	}
	goals := []*Rule{
		NewRule("Name").WithLHS("name", cellP(`(John\ )\A*`)).WithRHS("flag", cellP(`(1)`)),
		NewRule("Name").WithLHS("name", cellP(`(John\ )\A*`)).WithRHS("gender", cellP(`(M)`)),
		NewRule("Name").WithLHS("name", cellP(`(Susan\ )\A*`)).WithRHS("gender", cellP(`(F)`)),
		NewRule("Name").WithLHS("name", cellP(`(\LU\LL*\ )\A*`)).WithRHS("gender", pfd.Wildcard()),
	}
	for i, g := range goals {
		if Implies(psi, g) && FindCounterexample(psi, g) != nil {
			t.Errorf("goal %d: Implies and FindCounterexample disagree", i)
		}
	}
}

func TestRuleString(t *testing.T) {
	s := johnRule().String()
	if !strings.Contains(s, "name = (John") || !strings.Contains(s, "gender = (M)") {
		t.Errorf("String = %q", s)
	}
}
