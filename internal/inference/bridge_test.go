package inference

import (
	"testing"

	"pfd/internal/pattern"
	"pfd/internal/pfd"
)

func TestFromPFD(t *testing.T) {
	p := pfd.MustNew("Name", []string{"name"}, "gender",
		pfd.Row{LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(John\ )\A*`))}, RHS: pfd.Pat(pattern.Constant("M"))},
		pfd.Row{LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(Susan\ )\A*`))}, RHS: pfd.Pat(pattern.Constant("F"))},
	)
	rules := FromPFD(p)
	if len(rules) != 2 {
		t.Fatalf("%d rules", len(rules))
	}
	for _, r := range rules {
		if r.Relation != "Name" || len(r.LHS) != 1 || len(r.RHS) != 1 {
			t.Errorf("rule shape wrong: %s", r)
		}
	}
	// The converted rules are consistent.
	if _, ok := Consistent(rules); !ok {
		t.Error("converted tableau must be consistent")
	}
	// And the John row is implied by the converted set.
	goal := MustParseRule(`Name([name = (John\ )\A*] -> [gender = M])`)
	if !Implies(rules, goal) {
		t.Error("converted rules must imply their own rows")
	}
}

func TestFromPFDsDetectsInconsistentTableaux(t *testing.T) {
	// Two PFDs whose tableau rows contradict: the same zip prefix pinned
	// to two different cities — combined with a rule forcing every zip
	// to match the prefix, no instance can satisfy both.
	p1 := pfd.MustNew("Zip", []string{"zip"}, "city",
		pfd.Row{LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(900)\D{2}`))}, RHS: pfd.Pat(pattern.Constant("Los Angeles"))},
	)
	p2 := pfd.MustNew("Zip", []string{"zip"}, "city",
		pfd.Row{LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(900)\D{2}`))}, RHS: pfd.Pat(pattern.Constant("Chicago"))},
	)
	force := NewRule("Zip").
		WithLHS("zip", pfd.Wildcard()).
		WithRHS("zip", pfd.Pat(pattern.MustParse(`(900)\D{2}`)))
	rules := append(FromPFDs([]*pfd.PFD{p1, p2}), force)
	if w, ok := Consistent(rules); ok {
		t.Errorf("contradictory tableaux read as consistent: witness %v", w)
	}
	// Without the forcing rule a witness exists (a zip outside 900xx).
	if _, ok := Consistent(FromPFDs([]*pfd.PFD{p1, p2})); !ok {
		t.Error("unforced tableaux must be consistent via an out-of-pattern witness")
	}
}
