package inference

import (
	"testing"

	"pfd/internal/pattern"
	"pfd/internal/pfd"
)

func TestFromPFD(t *testing.T) {
	p := pfd.MustNew("Name", []string{"name"}, "gender",
		pfd.Row{LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(John\ )\A*`))}, RHS: pfd.Pat(pattern.Constant("M"))},
		pfd.Row{LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(Susan\ )\A*`))}, RHS: pfd.Pat(pattern.Constant("F"))},
	)
	rules := FromPFD(p)
	if len(rules) != 2 {
		t.Fatalf("%d rules", len(rules))
	}
	for _, r := range rules {
		if r.Relation != "Name" || len(r.LHS) != 1 || len(r.RHS) != 1 {
			t.Errorf("rule shape wrong: %s", r)
		}
	}
	// The converted rules are consistent.
	if _, ok := Consistent(rules); !ok {
		t.Error("converted tableau must be consistent")
	}
	// And the John row is implied by the converted set.
	goal := MustParseRule(`Name([name = (John\ )\A*] -> [gender = M])`)
	if !Implies(rules, goal) {
		t.Error("converted rules must imply their own rows")
	}
}

func TestToPFDsInvertsFromPFDs(t *testing.T) {
	p1 := pfd.MustNew("Name", []string{"name"}, "gender",
		pfd.Row{LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(John\ )\A*`))}, RHS: pfd.Pat(pattern.Constant("M"))},
		pfd.Row{LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(Susan\ )\A*`))}, RHS: pfd.Pat(pattern.Constant("F"))},
	)
	p2 := pfd.MustNew("Zip", []string{"city", "zip"}, "state",
		pfd.Row{LHS: []pfd.Cell{pfd.Wildcard(), pfd.Pat(pattern.MustParse(`(900)\D{2}`))}, RHS: pfd.Pat(pattern.Constant("CA"))},
	)
	back, err := ToPFDs(FromPFDs([]*pfd.PFD{p1, p2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("%d PFDs back, want 2", len(back))
	}
	if !back[0].Equal(p1) || !back[1].Equal(p2) {
		t.Fatalf("round trip drifted:\n %s\n %s", back[0], back[1])
	}
}

func TestToPFDsDecomposesMultiRHS(t *testing.T) {
	r := NewRule("R").
		WithLHS("zip", pfd.Pat(pattern.MustParse(`(900)\D{2}`))).
		WithRHS("city", pfd.Pat(pattern.Constant("Los Angeles"))).
		WithRHS("state", pfd.Pat(pattern.Constant("CA")))
	out, err := ToPFDs([]*Rule{r})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d PFDs, want 2 (one per RHS attribute)", len(out))
	}
	// Sorted RHS order: city before state.
	if out[0].RHS != "city" || out[1].RHS != "state" {
		t.Fatalf("RHS order: %s, %s", out[0].RHS, out[1].RHS)
	}
}

func TestToPFDsRejectsOverlappingSides(t *testing.T) {
	r := NewRule("R").
		WithLHS("a", pfd.Wildcard()).
		WithRHS("a", pfd.Pat(pattern.Constant("x")))
	if _, err := ToPFDs([]*Rule{r}); err == nil {
		t.Fatal("want error for attribute on both sides")
	}
}

func TestFromPFDsDetectsInconsistentTableaux(t *testing.T) {
	// Two PFDs whose tableau rows contradict: the same zip prefix pinned
	// to two different cities — combined with a rule forcing every zip
	// to match the prefix, no instance can satisfy both.
	p1 := pfd.MustNew("Zip", []string{"zip"}, "city",
		pfd.Row{LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(900)\D{2}`))}, RHS: pfd.Pat(pattern.Constant("Los Angeles"))},
	)
	p2 := pfd.MustNew("Zip", []string{"zip"}, "city",
		pfd.Row{LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(900)\D{2}`))}, RHS: pfd.Pat(pattern.Constant("Chicago"))},
	)
	force := NewRule("Zip").
		WithLHS("zip", pfd.Wildcard()).
		WithRHS("zip", pfd.Pat(pattern.MustParse(`(900)\D{2}`)))
	rules := append(FromPFDs([]*pfd.PFD{p1, p2}), force)
	if w, ok := Consistent(rules); ok {
		t.Errorf("contradictory tableaux read as consistent: witness %v", w)
	}
	// Without the forcing rule a witness exists (a zip outside 900xx).
	if _, ok := Consistent(FromPFDs([]*pfd.PFD{p1, p2})); !ok {
		t.Error("unforced tableaux must be consistent via an out-of-pattern witness")
	}
}
