package inference

import (
	"fmt"
	"strings"

	"pfd/internal/pfd"
)

// This file materializes proofs in the sense of Section 3.1: "a proof of
// ψ from Ψ using set I of axioms is a sequence of PFDs ψ1..ψn = ψ such
// that each ψi is in Ψ or follows from earlier ones by a rule of I". The
// closure computation is instrumented to emit one proof step per closure
// extension, following the constructive completeness argument of §7.1
// ("from PFD-closure to inference proof").

// Axiom names the inference rules of Figure 3.
type Axiom string

// The axioms of Figure 3, plus "Premise" for members of Ψ.
const (
	AxPremise          Axiom = "Premise"
	AxReflexivity      Axiom = "Reflexivity"
	AxAugmentation     Axiom = "Augmentation"
	AxTransitivity     Axiom = "Transitivity"
	AxReduction        Axiom = "Reduction"
	AxLHSGeneral       Axiom = "LHS-Generalization"
	AxInconsistencyEFQ Axiom = "Inconsistency-EFQ"
)

// A Step is one line of a proof: the derived rule, the axiom used, and
// the indices of the earlier steps it depends on.
type Step struct {
	Rule  *Rule
	By    Axiom
	From  []int
	Note  string
	Index int
}

// A Proof is a derivation sequence ending at the goal.
type Proof struct {
	Steps []Step
}

// String renders the proof one numbered line at a time.
func (p *Proof) String() string {
	var b strings.Builder
	for _, s := range p.Steps {
		fmt.Fprintf(&b, "(%d) %s", s.Index+1, s.Rule)
		fmt.Fprintf(&b, "   [%s", s.By)
		if len(s.From) > 0 {
			refs := make([]string, len(s.From))
			for i, f := range s.From {
				refs[i] = fmt.Sprintf("%d", f+1)
			}
			fmt.Fprintf(&b, " from %s", strings.Join(refs, ","))
		}
		b.WriteString("]")
		if s.Note != "" {
			fmt.Fprintf(&b, " — %s", s.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Prove attempts to construct a proof of psi from the rules using the
// instrumented closure computation. It returns nil when the (sound,
// incomplete — see closure.go) procedure cannot derive psi.
func Prove(rules []*Rule, psi *Rule) *Proof {
	pr := &Proof{}
	add := func(r *Rule, by Axiom, from []int, note string) int {
		idx := len(pr.Steps)
		pr.Steps = append(pr.Steps, Step{Rule: r, By: by, From: from, Note: note, Index: idx})
		return idx
	}

	// Step 1: Reflexivity gives X -> X from the goal's LHS.
	refl := Reflexivity(psi.Relation, psi.LHS)
	reflIdx := add(refl, AxReflexivity, nil, "X -> X from the goal's LHS")

	// closure tracks, per attribute, the tightest derived cell and the
	// proof step deriving "LHS(psi) -> attr" with that cell.
	type derived struct {
		cell pfd.Cell
		step int
	}
	closure := map[string]derived{}
	for a, c := range psi.LHS {
		closure[a] = derived{cell: c, step: reflIdx}
	}

	// Premises enter the proof lazily, only when used.
	premiseIdx := map[int]int{}
	getPremise := func(i int) int {
		if idx, ok := premiseIdx[i]; ok {
			return idx
		}
		idx := add(rules[i], AxPremise, nil, "")
		premiseIdx[i] = idx
		return idx
	}

	for changed := true; changed; {
		changed = false
		for i, r := range rules {
			// Check the (a.i)/(b) trigger against current closure cells.
			cells := map[string]pfd.Cell{}
			steps := map[string]bool{}
			deps := []int{}
			ok := true
			for a, c := range r.LHS {
				d, have := closure[a]
				if have && cellRestricts(d.cell, c) {
					cells[a] = d.cell
					if !steps[fmt.Sprint(d.step)] {
						steps[fmt.Sprint(d.step)] = true
						deps = append(deps, d.step)
					}
					continue
				}
				// Condition (b): wildcard LHS with constant RHS drops via
				// Reduction.
				constRHS := true
				for _, rc := range r.RHS {
					if _, isConst := rc.Constant(); !isConst {
						constRHS = false
					}
				}
				if !have && c.IsWildcard() && constRHS {
					continue
				}
				ok = false
				break
			}
			if !ok {
				continue
			}
			for a, c := range r.RHS {
				cur, have := closure[a]
				if have && (sameCell(cur.cell, c) || cellRestricts(cur.cell, c)) {
					continue // nothing tighter to derive
				}
				pIdx := getPremise(i)
				out := NewRule(psi.Relation)
				for la, lc := range psi.LHS {
					out.LHS[la] = lc
				}
				out.RHS[a] = c
				note := fmt.Sprintf("derives %s via the premise's LHS patterns", a)
				by := AxTransitivity
				if len(cells) < len(r.LHS) {
					by = AxReduction
					note = "wildcard LHS attributes dropped (constant RHS)"
				}
				stepIdx := add(out, by, append(append([]int{}, deps...), pIdx), note)
				closure[a] = derived{cell: c, step: stepIdx}
				changed = true
			}
		}
	}

	// Assemble the goal: every RHS attribute must be derived tightly.
	var goalDeps []int
	for a, want := range psi.RHS {
		d, ok := closure[a]
		if !ok || !cellRestricts(d.cell, want) {
			return nil
		}
		goalDeps = append(goalDeps, d.step)
	}
	add(psi, AxTransitivity, dedupeInts(goalDeps), "goal")
	return pr
}

func dedupeInts(in []int) []int {
	seen := map[int]bool{}
	out := in[:0]
	for _, x := range in {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
