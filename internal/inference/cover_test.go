package inference

import (
	"testing"

	"pfd/internal/pattern"
	"pfd/internal/pfd"
)

func TestMinimalCoverDropsDuplicates(t *testing.T) {
	a := MustParseRule(`Name([name = (John\ )\A*] -> [gender = M])`)
	b := MustParseRule(`Name([name = (John\ )\A*] -> [gender = M])`)
	got := MinimalCover([]*Rule{a, b})
	if len(got) != 1 {
		t.Fatalf("cover kept %d rules, want 1", len(got))
	}
}

func TestMinimalCoverDropsTransitiveConsequence(t *testing.T) {
	// a: name -> gender, b: gender -> title, c: name -> title follows by
	// transitivity, so a minimal cover drops c.
	a := MustParseRule(`Name([name = (John\ )\A*] -> [gender = M])`)
	b := MustParseRule(`Name([gender = M] -> [title = Mr])`)
	c := MustParseRule(`Name([name = (John\ )\A*] -> [title = Mr])`)
	got := MinimalCover([]*Rule{a, b, c})
	if len(got) != 2 {
		t.Fatalf("cover kept %d rules, want 2: %v", len(got), got)
	}
	for _, r := range got {
		if r == c {
			t.Fatal("transitive consequence survived the cover")
		}
	}
	// The cover still implies the dropped rule.
	if !Implies(got, c) {
		t.Fatal("cover lost a consequence")
	}
}

func TestMinimalCoverKeepsIndependentRules(t *testing.T) {
	rules := []*Rule{
		MustParseRule(`Zip([zip = (900)\D{2}] -> [city = Los\ Angeles])`),
		MustParseRule(`Zip([zip = (606)\D{2}] -> [city = Chicago])`),
		MustParseRule(`Zip([zip = (\D{3})\D{2}] -> [state = _])`),
	}
	got := MinimalCover(rules)
	if len(got) != len(rules) {
		t.Fatalf("independent rules dropped: kept %d of %d", len(got), len(rules))
	}
	// Input order preserved, input slice untouched.
	for i := range got {
		if got[i] != rules[i] {
			t.Fatal("cover reordered rules")
		}
	}
}

func TestMinimalCoverIdempotent(t *testing.T) {
	rules := []*Rule{
		MustParseRule(`Name([name = (John\ )\A*] -> [gender = M])`),
		MustParseRule(`Name([gender = M] -> [title = Mr])`),
		MustParseRule(`Name([name = (John\ )\A*] -> [title = Mr])`),
	}
	once := MinimalCover(rules)
	twice := MinimalCover(once)
	if len(twice) != len(once) {
		t.Fatalf("not idempotent: %d then %d", len(once), len(twice))
	}
}

func TestMinimalCoverRoundTripsThroughPFDs(t *testing.T) {
	// Rules → cover → PFDs → rules keeps the same consequences.
	p := pfd.MustNew("Zip", []string{"zip"}, "city",
		pfd.Row{LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(900)\D{2}`))}, RHS: pfd.Pat(pattern.Constant("Los Angeles"))},
		pfd.Row{LHS: []pfd.Cell{pfd.Pat(pattern.MustParse(`(606)\D{2}`))}, RHS: pfd.Pat(pattern.Constant("Chicago"))},
	)
	rules := FromPFD(p)
	cover := MinimalCover(append(rules, rules...)) // duplicated input
	back, err := ToPFDs(cover)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || !back[0].Equal(p) {
		t.Fatalf("cover round trip drifted: %v", back)
	}
}
