package pfd

import (
	"context"
	"io"

	"pfd/internal/relation"
	"pfd/internal/source"
)

// Typed .pfdt snapshot load failures, re-exported so callers can
// errors.Is-match the cause behind the *ParseError that
// FromSnapshotFile sources return and the direct error that
// LoadSnapshotFile returns.
// The version policy mirrors the Ruleset JSON envelope: readers accept
// format versions 1 through SnapshotVersion and reject newer ones with
// ErrSnapshotVersion (before the checksum verdict, so "upgrade" is
// reported rather than "corrupt").
var (
	ErrSnapshotMagic     = relation.ErrSnapshotMagic
	ErrSnapshotVersion   = relation.ErrSnapshotVersion
	ErrSnapshotChecksum  = relation.ErrSnapshotChecksum
	ErrSnapshotTruncated = relation.ErrSnapshotTruncated
	ErrSnapshotCorrupt   = relation.ErrSnapshotCorrupt
)

// SnapshotVersion is the .pfdt snapshot format version this build
// writes (see Table.WriteSnapshotFile and FromSnapshotFile).
const SnapshotVersion = relation.SnapshotVersion

// Tuple is one record: column name -> value.
type Tuple = source.Tuple

// Source is how tuples enter every v2 entry point: Discover, Detect,
// Validate, and RepairToFixpoint all consume Sources, so CSV files,
// JSONL streams, in-memory tables, and live channels are
// interchangeable. See the constructors FromCSV, FromCSVFile,
// FromJSONL, FromJSONLFile, FromSnapshotFile, FromTable, and
// FromTuples.
type Source = source.Source

// ParseError reports malformed input from a Source: it carries the
// relation name, the file path when known, and the 1-based record
// number, and unwraps to the underlying cause.
type ParseError = source.ParseError

// FromCSV wraps a reader of header-first CSV as a Source. The source
// is single-shot: it can be iterated or materialized once.
func FromCSV(name string, r io.Reader) Source { return source.NewCSV(name, r) }

// FromCSVFile names a CSV file with a header row as a Source. The file
// is opened at iteration time and the source is re-iterable.
func FromCSVFile(name, path string) Source { return source.CSVFile(name, path) }

// FromJSONL wraps a reader of JSONL (one flat JSON object per line) as
// a Source. Non-string scalars are stringified; nested values are
// *ParseError failures; an explicit null is an absent key — on the
// streaming path (Validate, the Checker) a null in a referenced column
// therefore surfaces as a *MissingColumnError, while batch entry
// points (Discover, Detect), which materialize the stream into a
// rectangular table first, necessarily fill absent keys with "".
// The source is single-shot.
func FromJSONL(name string, r io.Reader) Source { return source.NewJSONL(name, r) }

// FromJSONLFile names a JSONL file as a re-iterable Source.
func FromJSONLFile(name, path string) Source { return source.JSONLFile(name, path) }

// FromSnapshotFile names a .pfdt binary table snapshot (written by
// Table.WriteSnapshotFile or `pfd discover -save-table`) as a
// re-iterable Source. Loading is a single sequential read that
// rebuilds the dictionary-encoded table directly — no CSV parsing, no
// string re-interning — so it is the fast path for large reference
// tables. name overrides the relation name stored in the snapshot;
// pass "" to keep the stored name. A missing, truncated, corrupted,
// or future-version file surfaces as a *ParseError wrapping the typed
// snapshot error.
func FromSnapshotFile(name, path string) Source { return source.SnapshotFile(name, path) }

// LoadSnapshotFile reads a .pfdt table snapshot directly into a Table
// — the counterpart of Table.WriteSnapshotFile for callers that want
// the table itself rather than a Source. Failures are the typed
// ErrSnapshot* errors.
func LoadSnapshotFile(path string) (*Table, error) { return relation.LoadSnapshotFile(path) }

// FromTable wraps an in-memory table as a re-iterable Source.
// Materializing it is free and returns the table itself.
func FromTable(t *Table) Source { return source.FromTable(t) }

// FromTuples wraps a live tuple channel as a Source, for feeding
// Validate from in-process producers. Iteration ends when the channel
// closes; cancellation of the consuming context ends it early, which
// is what makes Validate over a never-closing feed promptly
// cancellable. cols declares the column order for materialization and
// may be nil when the source is only ever streamed.
func FromTuples(name string, cols []string, ch <-chan Tuple) Source {
	return source.FromChan(name, cols, ch)
}

// ReadTable materializes a Source into a Table: the cancellable v2
// replacement for ReadCSVFile, and the explicit form of what Discover
// and Detect do internally. Sources with a native column order (CSV,
// tables) keep it; schemaless sources (JSONL, channels without
// declared columns) get the sorted union of the keys seen.
func ReadTable(ctx context.Context, src Source) (*Table, error) {
	t, err := source.Materialize(ctx, src)
	if err != nil {
		return nil, wrapCanceled(err, "read", 0)
	}
	return t, nil
}
