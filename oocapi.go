package pfd

import (
	"context"

	"pfd/internal/ooc"
	"pfd/internal/source"
)

// OOCStats reports what an out-of-core discovery run did: chunking,
// spill volume, sample shape, and how far the dictionary-level bound
// cut the candidate lattice.
type OOCStats = ooc.Stats

// RuleHealth is one rule's exact support/violation counters and
// confidence, from the out-of-core confirm pass or a Maintainer.
type RuleHealth = ooc.RuleHealth

// Maintainer folds new tuple batches into per-rule support and
// violation counters, re-ranking or demoting discovered PFDs without
// re-mining; see NewMaintainer.
type Maintainer = ooc.Maintainer

// NewMaintainer tracks the given rules for incremental maintenance.
// params supplies the demotion threshold (Delta, with MinSupport as
// slack); pass DefaultParams() or the Params of the discovery that
// produced the rules.
func NewMaintainer(pfds []*PFD, params Params) *Maintainer {
	return ooc.NewMaintainer(pfds, params)
}

// An OOCOption configures DiscoverOutOfCore.
type OOCOption func(*oocConfig)

type oocConfig struct {
	opt ooc.Options
}

func newOOCConfig(opts []OOCOption) oocConfig {
	cfg := oocConfig{opt: ooc.Options{Params: DefaultParams()}}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithOOCParams replaces the discovery parameter set for an
// out-of-core run.
func WithOOCParams(p Params) OOCOption {
	return func(c *oocConfig) { c.opt.Params = p }
}

// WithChunkRows bounds the rows per chunk when the driver does the
// chunking (row and tuple sources; chunked .pfdt sources define their
// own boundaries). <= 0 means the default (64Ki rows).
func WithChunkRows(n int) OOCOption {
	return func(c *oocConfig) { c.opt.ChunkRows = n }
}

// WithSampleRows sets the target size of the deterministic systematic
// sample mined for candidate estimates (and, under WithSampleVerify,
// the candidate screen). 0 means the default (64Ki rows); negative
// disables sampling.
func WithSampleRows(n int) OOCOption {
	return func(c *oocConfig) { c.opt.SampleRows = n }
}

// WithMemLimit caps the bytes of chunk data kept resident: beyond it,
// ingested chunks spill to .pfdt snapshots and candidate evaluation
// batches its column projections to half the limit. 0 (the default)
// keeps everything in memory.
func WithMemLimit(bytes int64) OOCOption {
	return func(c *oocConfig) { c.opt.MemLimit = bytes }
}

// WithSpillDir sets where spilled chunk snapshots go. The default is a
// fresh directory under the OS temp dir, removed when discovery
// returns.
func WithSpillDir(dir string) OOCOption {
	return func(c *oocConfig) { c.opt.SpillDir = dir }
}

// WithSampleVerify screens the candidate lattice down to the
// dependencies sample mining surfaced before the exact pass:
// candidates the sample missed are skipped, trading completeness for
// speed. Every reported dependency is still exactly evaluated against
// all rows. Without this option the run is exhaustive and
// byte-identical to in-memory Discover.
func WithSampleVerify() OOCOption {
	return func(c *oocConfig) { c.opt.Verify = ooc.VerifySample }
}

// WithoutConfirmPass skips the final full streaming pass that
// annotates each discovered rule with exact support and
// streaming-violation counts (OOCDiscovery.Health).
func WithoutConfirmPass() OOCOption {
	return func(c *oocConfig) { c.opt.SkipConfirm = true }
}

// OOCDiscovery is the result of DiscoverOutOfCore. Unlike Discovery it
// carries no materialized input table — that is the point.
type OOCDiscovery struct {
	result *ooc.Result
}

// Dependencies returns the discovered dependencies, sorted by their
// embedded FD. Without WithSampleVerify they are byte-identical to
// what in-memory Discover finds on the same rows.
func (d *OOCDiscovery) Dependencies() []*Dependency { return d.result.Dependencies }

// PFDs returns the discovered PFDs, in dependency order.
func (d *OOCDiscovery) PFDs() []*PFD {
	out := make([]*PFD, len(d.result.Dependencies))
	for i, dep := range d.result.Dependencies {
		out[i] = dep.PFD
	}
	return out
}

// Params returns the effective (normalized) discovery parameters.
func (d *OOCDiscovery) Params() Params { return d.result.Params }

// Profiles returns the per-column profiles, computed from the merged
// global dictionaries — identical to profiling the materialized
// relation.
func (d *OOCDiscovery) Profiles() []ColumnProfile { return d.result.Profiles }

// Stats reports chunking, spilling, sampling, and lattice pruning.
func (d *OOCDiscovery) Stats() OOCStats { return d.result.Stats }

// Health returns the confirm pass's exact per-rule counters, ranked
// by confidence (empty under WithoutConfirmPass).
func (d *OOCDiscovery) Health() []RuleHealth { return d.result.Health }

// Maintainer returns a Maintainer tracking the discovered rules,
// seeded with the confirm pass's counters when available — the
// incremental-maintenance entry point.
func (d *OOCDiscovery) Maintainer() *Maintainer {
	m := ooc.NewMaintainer(d.PFDs(), d.result.Params)
	for _, h := range d.result.Health {
		m.Seed(h)
	}
	m.ObserveRows(d.result.Rows)
	return m
}

// Ruleset packages the discovered PFDs as a durable artifact with
// provenance. The envelope is identical to Discovery.Ruleset for the
// same input, so serialized artifacts from the two paths compare
// byte for byte.
func (d *OOCDiscovery) Ruleset() *Ruleset {
	params := d.result.Params
	return &Ruleset{
		Name: d.result.Name,
		Provenance: &Provenance{
			Source: d.result.Name,
			Rows:   d.result.Rows,
			Tool:   "discover",
			Params: &params,
		},
		PFDs: d.PFDs(),
	}
}

// DiscoverOutOfCore mines PFDs without materializing the input: the
// source is partitioned into bounded columnar chunks (spilled to
// .pfdt snapshots under WithMemLimit), per-chunk dictionaries merge
// into an append-only global dictionary, a deterministic sample is
// mined in memory, and surviving lattice candidates are verified
// exactly against all rows in column-bounded batches. Without
// WithSampleVerify the result is byte-identical to Discover on the
// same rows, for any chunk size, sample size, or memory limit.
// A final streaming pass annotates each rule with exact support and
// violation counts (Health), ready to seed incremental maintenance.
func DiscoverOutOfCore(ctx context.Context, src Source, opts ...OOCOption) (*OOCDiscovery, error) {
	cfg := newOOCConfig(opts)
	res, err := ooc.Discover(ctx, src, cfg.opt)
	if err != nil {
		rows := 0
		if res != nil {
			rows = res.Rows
		}
		return nil, wrapCanceled(err, "discover", rows)
	}
	return &OOCDiscovery{result: res}, nil
}

// FromSnapshotFiles names an ordered list of .pfdt chunk files (as
// written by `pfd datagen -chunk-rows` or repeated
// Table.WriteSnapshotFile calls) as one logical relation. The source
// is re-iterable, and DiscoverOutOfCore consumes it chunk by chunk —
// the files are never materialized together. name overrides the
// relation name ("" adopts the first chunk's stored name). All chunks
// must share the first chunk's column set and order.
func FromSnapshotFiles(name string, paths ...string) Source {
	return source.SnapshotChunks(name, paths...)
}
