package pfd_test

import (
	"fmt"

	"pfd"
)

// ExampleDiscover mines the paper's Zip -> City dependency from Table 2
// (scaled past the support thresholds) and repairs the seeded error.
func ExampleDiscover() {
	t := pfd.NewTable("Zip", "zip", "city")
	for _, z := range []string{"90001", "90002", "90003", "90005", "90011", "90012"} {
		t.Append(z, "Los Angeles")
	}
	for _, z := range []string{"60601", "60602", "60603", "60604", "60605", "60607"} {
		t.Append(z, "Chicago")
	}
	t.Append("90004", "New York") // s4's error

	res := pfd.Discover(t, pfd.Params{MinSupport: 5, Delta: 0.15, MinCoverage: 0.10})
	for _, d := range res.Dependencies {
		if d.RHS == "city" {
			fmt.Println(d.Embedded(), "variable:", d.Variable)
		}
	}
	for _, f := range pfd.Detect(t, res.PFDs()) {
		fmt.Printf("%s: %q -> %q\n", f.Cell, f.Observed, f.Proposed)
	}
	// Output:
	// [zip] -> [city] variable: true
	// r12[city]: "New York" -> "Los Angeles"
}

// ExamplePattern_Equivalent shows constrained-pattern equivalence: two
// full names are equivalent under λ4's pattern iff their first names
// agree.
func ExamplePattern_Equivalent() {
	p := pfd.MustParsePattern(`(\LU\LL*\ )\A*`)
	fmt.Println(p.Equivalent("John Charles", "John Bosco"))
	fmt.Println(p.Equivalent("John Charles", "Susan Orlean"))
	// Output:
	// true
	// false
}

// ExampleNewPFD builds ψ1 of Figure 2 by hand and checks Table 1.
func ExampleNewPFD() {
	t := pfd.NewTable("Name", "name", "gender")
	t.Append("John Charles", "M")
	t.Append("Susan Boyle", "M") // should be F

	psi, _ := pfd.NewPFD("Name", []string{"name"}, "gender",
		pfd.TableauRow{
			LHS: []pfd.TableauCell{pfd.Pat(pfd.MustParsePattern(`(Susan\ )\A*`))},
			RHS: pfd.Pat(pfd.ConstantPattern("F")),
		},
	)
	for _, v := range psi.Violations(t) {
		fmt.Println(v.ErrorCell, "expected", v.Expected)
	}
	// Output:
	// r1[gender] expected F
}

// ExampleImplies demonstrates Section 3 reasoning: transitivity through
// the PFD-closure.
func ExampleImplies() {
	john, _ := pfd.ParseRule(`Name([name = (John\ )\A*] -> [gender = M])`)
	title, _ := pfd.ParseRule(`Name([gender = M] -> [title = Mr])`)
	goal, _ := pfd.ParseRule(`Name([name = (John\ )\A*] -> [title = Mr])`)
	fmt.Println(pfd.Implies([]*pfd.Rule{john, title}, goal))
	// Output:
	// true
}

// ExampleNewChecker validates a stream against a mined constraint.
func ExampleNewChecker() {
	psi, _ := pfd.NewPFD("Zip", []string{"zip"}, "state",
		pfd.TableauRow{
			LHS: []pfd.TableauCell{pfd.Pat(pfd.MustParsePattern(`(\D{3})\D{2}`))},
			RHS: pfd.Wildcard(),
		},
	)
	c := pfd.NewChecker([]*pfd.PFD{psi})
	mustStream(c.CheckNext(map[string]string{"zip": "90001", "state": "CA"}))
	mustStream(c.CheckNext(map[string]string{"zip": "90002", "state": "CA"}))
	for _, v := range mustStream(c.CheckNext(map[string]string{"zip": "90003", "state": "WA"})) {
		fmt.Println(v.Cell, "expected", v.Expected)
	}
	// Output:
	// r2[state] expected CA
}

// mustStream unwraps CheckNext in examples; a missing-column error is a
// programming mistake there, not data dirt.
func mustStream(vs []pfd.StreamViolation, err error) []pfd.StreamViolation {
	if err != nil {
		panic(err)
	}
	return vs
}

// ExampleNewStreamEngine validates the same stream through the sharded
// engine: identical consensus semantics, concurrent-producer Submit,
// and a deterministic snapshot report.
func ExampleNewStreamEngine() {
	psi, _ := pfd.NewPFD("Zip", []string{"zip"}, "state",
		pfd.TableauRow{
			LHS: []pfd.TableauCell{pfd.Pat(pfd.MustParsePattern(`(\D{3})\D{2}`))},
			RHS: pfd.Wildcard(),
		},
	)
	eng := pfd.NewStreamEngine([]*pfd.PFD{psi}, pfd.StreamOptions{Shards: 4})
	for _, t := range []map[string]string{
		{"zip": "90001", "state": "CA"},
		{"zip": "90002", "state": "CA"},
		{"zip": "90003", "state": "WA"},
	} {
		if err := eng.Submit(t); err != nil {
			panic(err)
		}
	}
	rep := eng.Close()
	for _, v := range rep.Violations {
		fmt.Println(v.Cell, "expected", v.Expected)
	}
	// Output:
	// r2[state] expected CA
}
