package pfd_test

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"pfd"
)

// zipTable builds the paper's Table 2 scenario (scaled past the
// support thresholds) with the seeded error s4[city].
func zipTable() *pfd.Table {
	t := pfd.NewTable("Zip", "zip", "city")
	for _, z := range []string{"90001", "90002", "90003", "90005", "90011", "90012"} {
		t.Append(z, "Los Angeles")
	}
	for _, z := range []string{"60601", "60602", "60603", "60604", "60605", "60607"} {
		t.Append(z, "Chicago")
	}
	t.Append("90004", "New York") // s4's error
	return t
}

// ExampleDiscover mines the paper's Zip -> City dependency from Table 2
// and repairs the seeded error, with the v2 context/Source/iterator
// API end to end.
func ExampleDiscover() {
	ctx := context.Background()
	src := pfd.FromTable(zipTable())

	disc, err := pfd.Discover(ctx, src,
		pfd.WithMinSupport(5), pfd.WithDelta(0.15), pfd.WithMinCoverage(0.10))
	if err != nil {
		panic(err)
	}
	for d := range disc.All() {
		if d.RHS == "city" {
			fmt.Println(d.Embedded(), "variable:", d.Variable)
		}
	}
	det, err := pfd.Detect(ctx, src, disc.PFDs())
	if err != nil {
		panic(err)
	}
	for f := range det.All() {
		fmt.Printf("%s: %q -> %q\n", f.Cell, f.Observed, f.Proposed)
	}
	// Output:
	// [zip] -> [city] variable: true
	// r12[city]: "New York" -> "Los Angeles"
}

// ExampleDiscover_context shows the cancellation and progress
// machinery: a discovery over a two-level lattice walk reports each
// completed level, and canceling the context from the progress
// callback stops the walk deterministically with a typed
// *CanceledError that unwraps to context.Canceled.
func ExampleDiscover_context() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	_, err := pfd.Discover(ctx, pfd.FromTable(zipTable()),
		pfd.WithMinSupport(5), pfd.WithDelta(0.15), pfd.WithMaxLHS(2),
		pfd.WithDiscoverProgress(func(p pfd.DiscoveryProgress) {
			fmt.Printf("level %d/%d done (%d dependencies)\n",
				p.Level, p.MaxLevel, p.Dependencies)
			if p.Level == 1 {
				cancel() // enough: stop before the multi-attribute level
			}
		}))
	var ce *pfd.CanceledError
	fmt.Println("canceled:", errors.As(err, &ce) && errors.Is(err, context.Canceled))
	// Output:
	// level 1/2 done (2 dependencies)
	// canceled: true
}

// ExampleValidate checks a CSV stream against a hand-built PFD with
// streaming consensus semantics: the third tuple deviates from the
// majority state of its zip-prefix group.
func ExampleValidate() {
	psi, _ := pfd.NewPFD("Zip", []string{"zip"}, "state",
		pfd.TableauRow{
			LHS: []pfd.TableauCell{pfd.Pat(pfd.MustParsePattern(`(\D{3})\D{2}`))},
			RHS: pfd.Wildcard(),
		},
	)
	stream := strings.NewReader("zip,state\n90001,CA\n90002,CA\n90003,WA\n")

	val, err := pfd.Validate(context.Background(),
		pfd.FromCSV("stream", stream), []*pfd.PFD{psi},
		pfd.WithShards(4))
	if err != nil {
		panic(err)
	}
	fmt.Println("checked", val.Rows(), "tuples")
	for v := range val.Live() {
		fmt.Println(v.Cell, "expected", v.Expected)
	}
	// Output:
	// checked 3 tuples
	// r2[state] expected CA
}

// ExamplePattern_Equivalent shows constrained-pattern equivalence: two
// full names are equivalent under λ4's pattern iff their first names
// agree.
func ExamplePattern_Equivalent() {
	p := pfd.MustParsePattern(`(\LU\LL*\ )\A*`)
	fmt.Println(p.Equivalent("John Charles", "John Bosco"))
	fmt.Println(p.Equivalent("John Charles", "Susan Orlean"))
	// Output:
	// true
	// false
}

// ExampleNewPFD builds ψ1 of Figure 2 by hand and checks Table 1.
func ExampleNewPFD() {
	t := pfd.NewTable("Name", "name", "gender")
	t.Append("John Charles", "M")
	t.Append("Susan Boyle", "M") // should be F

	psi, _ := pfd.NewPFD("Name", []string{"name"}, "gender",
		pfd.TableauRow{
			LHS: []pfd.TableauCell{pfd.Pat(pfd.MustParsePattern(`(Susan\ )\A*`))},
			RHS: pfd.Pat(pfd.ConstantPattern("F")),
		},
	)
	for _, v := range psi.Violations(t) {
		fmt.Println(v.ErrorCell, "expected", v.Expected)
	}
	// Output:
	// r1[gender] expected F
}

// ExampleImplies demonstrates Section 3 reasoning: transitivity through
// the PFD-closure.
func ExampleImplies() {
	john, _ := pfd.ParseRule(`Name([name = (John\ )\A*] -> [gender = M])`)
	title, _ := pfd.ParseRule(`Name([gender = M] -> [title = Mr])`)
	goal, _ := pfd.ParseRule(`Name([name = (John\ )\A*] -> [title = Mr])`)
	fmt.Println(pfd.Implies([]*pfd.Rule{john, title}, goal))
	// Output:
	// true
}

// ExampleNewChecker validates a stream against a mined constraint.
func ExampleNewChecker() {
	psi, _ := pfd.NewPFD("Zip", []string{"zip"}, "state",
		pfd.TableauRow{
			LHS: []pfd.TableauCell{pfd.Pat(pfd.MustParsePattern(`(\D{3})\D{2}`))},
			RHS: pfd.Wildcard(),
		},
	)
	c := pfd.NewChecker([]*pfd.PFD{psi})
	mustStream(c.CheckNext(map[string]string{"zip": "90001", "state": "CA"}))
	mustStream(c.CheckNext(map[string]string{"zip": "90002", "state": "CA"}))
	for _, v := range mustStream(c.CheckNext(map[string]string{"zip": "90003", "state": "WA"})) {
		fmt.Println(v.Cell, "expected", v.Expected)
	}
	// Output:
	// r2[state] expected CA
}

// mustStream unwraps CheckNext in examples; a missing-column error is a
// programming mistake there, not data dirt.
func mustStream(vs []pfd.StreamViolation, err error) []pfd.StreamViolation {
	if err != nil {
		panic(err)
	}
	return vs
}

// ExampleNewStreamEngineContext validates the same stream through the
// manually driven sharded engine: identical consensus semantics,
// concurrent-producer Submit, and a deterministic snapshot report.
// (Source-driven runs should use Validate instead.)
func ExampleNewStreamEngineContext() {
	psi, _ := pfd.NewPFD("Zip", []string{"zip"}, "state",
		pfd.TableauRow{
			LHS: []pfd.TableauCell{pfd.Pat(pfd.MustParsePattern(`(\D{3})\D{2}`))},
			RHS: pfd.Wildcard(),
		},
	)
	eng := pfd.NewStreamEngineContext(context.Background(), []*pfd.PFD{psi}, pfd.WithShards(4))
	for _, t := range []map[string]string{
		{"zip": "90001", "state": "CA"},
		{"zip": "90002", "state": "CA"},
		{"zip": "90003", "state": "WA"},
	} {
		if err := eng.Submit(t); err != nil {
			panic(err)
		}
	}
	rep := eng.Close()
	for _, v := range rep.Violations {
		fmt.Println(v.Cell, "expected", v.Expected)
	}
	// Output:
	// r2[state] expected CA
}
