module pfd

go 1.23
