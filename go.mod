module pfd

go 1.24
