#!/usr/bin/env bash
# Crash-recovery smoke for pfdserved's durable tenant state: boot the
# daemon with -data-dir, acknowledge a few foreground ingest batches,
# kill -9 the process in the middle of a large background ingest, then
# restart on the same data directory and require:
#
#   - the boot log reports the recovery,
#   - the recovered ruleset is intact (same rule count),
#   - the recovered row/violation counters equal exactly what was
#     acknowledged — the killed mid-stream batch was never acked, so it
#     must not be counted,
#   - /metrics shows durability active plus the recovery gauges,
#   - a fresh tenant on the recovered daemon still agrees with
#     pfdstream verdict-for-verdict on the same input.
#
# Needs: go, curl, python3. Run from the repo root (CI does).
set -euo pipefail

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

say() { echo "serve_crash: $*"; }

say "building binaries"
go build -o "$workdir/bin/" ./cmd/pfdserved ./cmd/pfdstream ./cmd/pfd ./cmd/datagen

say "generating the T13 workload"
"$workdir/bin/datagen" -out "$workdir/data" -scale 0.02 -dirt 0.05 -seed 7 -table T13
csv="$workdir/data/T13.csv"

say "mining the ruleset"
"$workdir/bin/pfd" discover -in "$csv" -rules "$workdir/rules.json" >/dev/null
rule_count=$(python3 -c "import json,sys; print(len(json.load(open(sys.argv[1]))['rules']))" "$workdir/rules.json")

# Slice the stream: three acknowledged foreground batches, then a large
# background body (the stream repeated) to be killed mid-flight.
hdr=$(head -1 "$csv")
tail -n +2 "$csv" >"$workdir/body.csv"
body_rows=$(wc -l <"$workdir/body.csv")
fg_batch=$((body_rows / 4))
for i in 1 2 3; do
  { echo "$hdr"; sed -n "$(((i - 1) * fg_batch + 1)),$((i * fg_batch))p" "$workdir/body.csv"; } \
    >"$workdir/fg_$i.csv"
done
{ echo "$hdr"; for _ in $(seq 1 50); do cat "$workdir/body.csv"; done; } >"$workdir/bg.csv"

boot_server() {
  "$workdir/bin/pfdserved" -addr 127.0.0.1:0 -idle 10m -ring 1000000 \
    -data-dir "$workdir/state" -fsync >"$1" 2>&1 &
  server_pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$1" | head -1)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    say "server never reported its address:"; cat "$1"; exit 1
  fi
}

say "booting pfdserved with -data-dir -fsync"
boot_server "$workdir/serve1.log"
say "server up at $addr"

curl -sfS -X PUT --data-binary @"$workdir/rules.json" \
  "http://$addr/v1/tenants/crash/ruleset" >/dev/null

say "acknowledging 3 foreground batches of $fg_batch rows"
acked=0
for i in 1 2 3; do
  curl -sfS -X POST -H 'Content-Type: text/csv' --data-binary @"$workdir/fg_$i.csv" \
    "http://$addr/v1/tenants/crash/tuples" >"$workdir/ack_$i.json"
  acked=$((acked + $(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['accepted'])" "$workdir/ack_$i.json")))
done
acked_report=$(curl -sfS "http://$addr/v1/tenants/crash/report")
say "acknowledged $acked rows"

say "kill -9 mid-way through a background ingest"
curl -s -X POST -H 'Content-Type: text/csv' --data-binary @"$workdir/bg.csv" \
  "http://$addr/v1/tenants/crash/tuples" >/dev/null 2>&1 &
bg_curl=$!
sleep 0.3
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
wait "$bg_curl" 2>/dev/null || true

say "restarting on the same data directory"
boot_server "$workdir/serve2.log"
say "server back up at $addr"

grep -q "recovered 1 tenants" "$workdir/serve2.log" ||
  { say "no recovery line in the boot log:"; cat "$workdir/serve2.log"; exit 1; }

say "checking recovered state against what was acknowledged"
curl -sfS "http://$addr/v1/tenants/crash/ruleset" >"$workdir/recovered_rules.json"
curl -sfS "http://$addr/v1/tenants/crash/report" >"$workdir/recovered_report.json"
curl -sfS "http://$addr/metrics" >"$workdir/metrics.txt"
python3 - "$workdir/recovered_rules.json" "$workdir/recovered_report.json" \
  "$rule_count" "$acked" <<EOF
import json, sys
rules = json.load(open(sys.argv[1]))
report = json.load(open(sys.argv[2]))
want_rules, acked = int(sys.argv[3]), int(sys.argv[4])
acked_report = json.loads('''$acked_report''')

assert len(rules["rules"]) == want_rules, \
    f'recovered ruleset has {len(rules["rules"])} rules, want {want_rules}'
assert report["rows"] == acked, \
    f'recovered {report["rows"]} rows; exactly {acked} were acknowledged ' \
    '(the killed batch was never acked and must not count)'
assert report["live_violations"] == acked_report["live_violations"], \
    f'recovered {report["live_violations"]} violations, ' \
    f'acknowledged {acked_report["live_violations"]}'
print(f'  recovered exactly the acknowledged state: {acked} rows, '
      f'{report["live_violations"]} violations, {want_rules} rules')
EOF

grep -q "^pfd_durability_state 1$" "$workdir/metrics.txt" ||
  { say "durability not active after recovery"; cat "$workdir/metrics.txt"; exit 1; }
grep -q "^pfd_recovered_tenants 1$" "$workdir/metrics.txt" ||
  { say "recovery gauges missing"; cat "$workdir/metrics.txt"; exit 1; }

say "fresh tenant on the recovered daemon must agree with pfdstream"
"$workdir/bin/pfdstream" -rules "$workdir/rules.json" -workers 1 -json \
  -in "$csv" >"$workdir/cli.json" 2>"$workdir/cli.log" || status=$?
status=${status:-0}
if [ "$status" -gt 1 ]; then
  say "pfdstream failed ($status):"; cat "$workdir/cli.log"; exit 1
fi
curl -sfS -X PUT --data-binary @"$workdir/rules.json" \
  "http://$addr/v1/tenants/fresh/ruleset" >/dev/null
curl -sfS -X POST -H 'Content-Type: text/csv' --data-binary @"$csv" \
  "http://$addr/v1/tenants/fresh/tuples" >/dev/null
curl -sfS "http://$addr/v1/tenants/fresh/report" >"$workdir/fresh.json"
python3 - "$workdir/cli.json" "$workdir/fresh.json" <<'EOF'
import json, sys
cli, fresh = json.load(open(sys.argv[1])), json.load(open(sys.argv[2]))
assert fresh["rows"] == cli["rows"], \
    f'fresh tenant validated {fresh["rows"]} rows, CLI {cli["rows"]}'
assert fresh["live_violations"] == cli["live_violations"], \
    f'verdicts diverge: fresh {fresh["live_violations"]}, CLI {cli["live_violations"]}'
print(f'  agree: {cli["rows"]} rows, {cli["live_violations"]} violations')
EOF

say "graceful shutdown"
kill -TERM "$server_pid"
shutdown_status=0
wait "$server_pid" || shutdown_status=$?
server_pid=""
if [ "$shutdown_status" -ne 0 ]; then
  say "server exited $shutdown_status on SIGTERM:"; cat "$workdir/serve2.log"; exit 1
fi

say "OK"
