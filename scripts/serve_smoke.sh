#!/usr/bin/env bash
# End-to-end smoke test for pfdserved: boot the daemon, load a ruleset
# mined from a T13 workload, stream the same dirty CSV through the HTTP
# ingest, and require the service's violation verdict to be identical
# to pfdstream's on the same input — the CLI and the daemon must agree,
# tuple for tuple. Finishes with a graceful-shutdown check: SIGTERM
# must drain and exit 0.
#
# Needs: go, curl, python3. Run from the repo root (CI does).
set -euo pipefail

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

say() { echo "serve_smoke: $*"; }

say "building binaries"
go build -o "$workdir/bin/" ./cmd/pfdserved ./cmd/pfdstream ./cmd/pfd ./cmd/datagen

say "generating the T13 workload"
"$workdir/bin/datagen" -out "$workdir/data" -scale 0.02 -dirt 0.05 -seed 7 -table T13
csv="$workdir/data/T13.csv"

say "mining the ruleset"
"$workdir/bin/pfd" discover -in "$csv" -rules "$workdir/rules.json" >/dev/null

say "baseline: pfdstream -json over the same stream"
"$workdir/bin/pfdstream" -rules "$workdir/rules.json" -workers 1 -json \
  -in "$csv" >"$workdir/cli.json" 2>"$workdir/cli.log" || status=$?
# Exit 1 just means the stream raised violations — that's the point.
status=${status:-0}
if [ "$status" -gt 1 ]; then
  say "pfdstream failed ($status):"; cat "$workdir/cli.log"; exit 1
fi

say "booting pfdserved"
"$workdir/bin/pfdserved" -addr 127.0.0.1:0 -idle 10m -ring 1000000 \
  >"$workdir/serve.log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$workdir/serve.log" | head -1)
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  say "server never reported its address:"; cat "$workdir/serve.log"; exit 1
fi
say "server up at $addr"

curl -sfS -X PUT --data-binary @"$workdir/rules.json" \
  "http://$addr/v1/tenants/smoke/ruleset" >/dev/null
curl -sfS -X POST -H 'Content-Type: text/csv' --data-binary @"$csv" \
  "http://$addr/v1/tenants/smoke/tuples" >"$workdir/ingest.json"
curl -sfS "http://$addr/v1/tenants/smoke/report" >"$workdir/served.json"
curl -sfS "http://$addr/metrics" >"$workdir/metrics.txt"

say "comparing the CLI report against the service report"
python3 - "$workdir/cli.json" "$workdir/served.json" "$workdir/ingest.json" <<'EOF'
import json, sys

cli = json.load(open(sys.argv[1]))
served = json.load(open(sys.argv[2]))
ingest = json.load(open(sys.argv[3]))

for rep, who in ((cli, "cli"), (served, "served"), (ingest, "ingest")):
    assert rep["format"] == "pfd-report" and rep["version"] == 1, f"{who}: bad envelope"

assert ingest["accepted"] == cli["rows"], \
    f'ingest accepted {ingest["accepted"]}, stream had {cli["rows"]} tuples'
assert served["rows"] == cli["rows"], \
    f'service validated {served["rows"]} rows, CLI {cli["rows"]}'
assert served["live_violations"] == cli["live_violations"], \
    f'violation counts diverge: service {served["live_violations"]}, CLI {cli["live_violations"]}'
assert served["violations"] == cli["violations"], \
    "violation sets diverge between the service and the CLI"
print(f'  agree: {cli["rows"]} rows, {cli["live_violations"]} violations, '
      f'{len(cli["violations"])} findings byte-identical')
EOF

grep -q 'pfd_tenant_rows_total{tenant="smoke"}' "$workdir/metrics.txt" ||
  { say "per-tenant metrics missing"; cat "$workdir/metrics.txt"; exit 1; }

say "graceful shutdown"
kill -TERM "$server_pid"
shutdown_status=0
wait "$server_pid" || shutdown_status=$?
server_pid=""
if [ "$shutdown_status" -ne 0 ]; then
  say "server exited $shutdown_status on SIGTERM:"; cat "$workdir/serve.log"; exit 1
fi
grep -q "drained" "$workdir/serve.log" ||
  { say "no drain line in the server log:"; cat "$workdir/serve.log"; exit 1; }

say "OK"
