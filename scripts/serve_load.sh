#!/usr/bin/env bash
# Multi-tenant load smoke for pfdserved's plan cache: boot the daemon,
# load the same mined T13 ruleset into many tenants concurrently,
# stream the dirty CSV through every tenant's ingest, and hit each
# tenant's plan debug view twice — the first view compiles the shared
# plan (miss), the second must be served from the per-tenant cache
# (hit). Finishes by asserting the summed plan-cache counters on
# /metrics: at least one hit per tenant, one invalidation per reload,
# and the full row count across tenants.
#
# Needs: go, curl, python3. Run from the repo root. Not part of CI —
# run it by hand for the README load numbers.
set -euo pipefail

tenants=${TENANTS:-16}

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

say() { echo "serve_load: $*"; }

# rcurl: curl with bounded retry and exponential backoff. The daemon
# answers transient refusals (draining, degraded, backpressure) with
# 503 + Retry-After; a load driver should wait them out, not die on
# the first one.
rcurl() {
  local attempt=1 delay=0.2
  while true; do
    if curl -sfS "$@"; then return 0; fi
    if [ "$attempt" -ge 5 ]; then
      say "request failed after $attempt attempts: $*" >&2
      return 1
    fi
    sleep "$delay"
    delay=$(python3 -c "print($delay * 2)")
    attempt=$((attempt + 1))
  done
}

say "building binaries"
go build -o "$workdir/bin/" ./cmd/pfdserved ./cmd/pfd ./cmd/datagen

say "generating the T13 workload"
"$workdir/bin/datagen" -out "$workdir/data" -scale 0.02 -dirt 0.05 -seed 7 -table T13
csv="$workdir/data/T13.csv"
rows=$(($(wc -l <"$csv") - 1))

say "mining the ruleset"
"$workdir/bin/pfd" discover -in "$csv" -rules "$workdir/rules.json" >/dev/null

say "booting pfdserved"
"$workdir/bin/pfdserved" -addr 127.0.0.1:0 -idle 10m -ring 1000000 \
  >"$workdir/serve.log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$workdir/serve.log" | head -1)
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  say "server never reported its address:"; cat "$workdir/serve.log"; exit 1
fi
say "server up at $addr, driving $tenants tenants x $rows rows"

start=$(date +%s.%N)
drive_tenant() {
  t="t$1"
  rcurl -X PUT --data-binary @"$workdir/rules.json" \
    "http://$addr/v1/tenants/$t/ruleset" >/dev/null
  # First plan view compiles (miss), second must hit the cache.
  rcurl "http://$addr/v1/tenants/$t/plan" >"$workdir/plan_$t.json"
  rcurl "http://$addr/v1/tenants/$t/plan" >"$workdir/plan2_$t.json"
  rcurl -X POST -H 'Content-Type: text/csv' --data-binary @"$csv" \
    "http://$addr/v1/tenants/$t/tuples" >/dev/null
  # Hot reload invalidates the cached plan; the next view recompiles.
  rcurl -X PUT --data-binary @"$workdir/rules.json" \
    "http://$addr/v1/tenants/$t/ruleset" >/dev/null
  rcurl "http://$addr/v1/tenants/$t/plan" >/dev/null
}
pids=()
for i in $(seq 1 "$tenants"); do
  drive_tenant "$i" &
  pids+=($!)
done
for pid in "${pids[@]}"; do
  wait "$pid" || { say "a tenant driver failed"; cat "$workdir/serve.log"; exit 1; }
done
elapsed=$(python3 -c "import time; print(f'{time.time() - $start:.2f}')")

curl -sfS "http://$addr/metrics" >"$workdir/metrics.txt"

say "checking plan-cache counters on /metrics"
python3 - "$workdir/metrics.txt" "$tenants" "$rows" "$elapsed" <<'EOF'
import sys

metrics = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    name, _, value = line.rpartition(" ")
    metrics[name] = float(value)

tenants, rows = int(sys.argv[2]), int(sys.argv[3])

hits = metrics.get("pfd_plan_cache_hits_total", 0)
misses = metrics.get("pfd_plan_cache_misses_total", 0)
invalid = metrics.get("pfd_plan_invalidations_total", 0)
total_rows = sum(v for k, v in metrics.items()
                 if k.startswith("pfd_tenant_rows_total{"))

assert hits >= tenants, f"expected >= {tenants} plan-cache hits, got {hits}"
assert misses >= 2 * tenants, \
    f"expected >= {2 * tenants} plan-cache misses (compile + post-reload), got {misses}"
assert invalid >= tenants, \
    f"expected >= {tenants} plan invalidations (one reload each), got {invalid}"
assert total_rows == tenants * rows, \
    f"expected {tenants * rows} rows across tenants, got {total_rows:.0f}"

elapsed = float(sys.argv[4])
print(f"  plan cache: {hits:.0f} hits / {misses:.0f} misses / {invalid:.0f} invalidations")
print(f"  ingest: {total_rows:.0f} rows across {tenants} tenants in {elapsed}s "
      f"({total_rows / elapsed:.0f} rows/s)")
EOF

say "graceful shutdown"
kill -TERM "$server_pid"
shutdown_status=0
wait "$server_pid" || shutdown_status=$?
server_pid=""
if [ "$shutdown_status" -ne 0 ]; then
  say "server exited $shutdown_status on SIGTERM:"; cat "$workdir/serve.log"; exit 1
fi

say "OK"
