package pfd

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"

	"pfd/internal/discovery"
	"pfd/internal/pfd"
	"pfd/internal/repair"
	"pfd/internal/source"
	"pfd/internal/stream"
)

// A CanceledError reports a run interrupted by context cancellation or
// deadline expiry. It unwraps to the context error, so
// errors.Is(err, context.Canceled) (or context.DeadlineExceeded) holds.
type CanceledError struct {
	// Op is the interrupted operation: "read", "discover", "detect",
	// "validate", or "repair".
	Op string
	// Rows is how many rows/tuples had been processed when the
	// cancellation was observed (0 when unknown).
	Rows int
	// Err is the underlying context error.
	Err error
}

func (e *CanceledError) Error() string {
	if e.Rows > 0 {
		return fmt.Sprintf("pfd: %s canceled after %d rows: %v", e.Op, e.Rows, e.Err)
	}
	return fmt.Sprintf("pfd: %s canceled: %v", e.Op, e.Err)
}

func (e *CanceledError) Unwrap() error { return e.Err }

// wrapCanceled types context errors as *CanceledError and passes every
// other error (already typed: *ParseError, *MissingColumnError)
// through unchanged.
func wrapCanceled(err error, op string, rows int) error {
	var ce *CanceledError
	if errors.As(err, &ce) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &CanceledError{Op: op, Rows: rows, Err: err}
	}
	return err
}

// seqOf adapts a slice to an iter.Seq.
func seqOf[T any](s []T) iter.Seq[T] {
	return func(yield func(T) bool) {
		for _, v := range s {
			if !yield(v) {
				return
			}
		}
	}
}

// Discovery is the result of Discover: the dependencies, the
// materialized input table, and the effective parameters.
type Discovery struct {
	result *discovery.Result
	table  *Table
}

// Table returns the materialized input, so a discover-then-detect
// pipeline reads the source once:
//
//	disc, _ := pfd.Discover(ctx, src)
//	det, _ := pfd.Detect(ctx, pfd.FromTable(disc.Table()), disc.PFDs())
func (d *Discovery) Table() *Table { return d.table }

// Dependencies returns the discovered dependencies, sorted by their
// embedded FD.
func (d *Discovery) Dependencies() []*Dependency { return d.result.Dependencies }

// All streams the discovered dependencies.
func (d *Discovery) All() iter.Seq[*Dependency] { return seqOf(d.result.Dependencies) }

// PFDs returns the discovered PFDs, in dependency order.
func (d *Discovery) PFDs() []*PFD {
	out := make([]*PFD, len(d.result.Dependencies))
	for i, dep := range d.result.Dependencies {
		out[i] = dep.PFD
	}
	return out
}

// Params returns the effective (normalized) discovery parameters.
func (d *Discovery) Params() Params { return d.result.Params }

// Ruleset packages the discovered PFDs as a durable artifact with
// provenance (source table, row count, effective parameters), ready
// to persist with WriteTo/WriteFile and reload with LoadRuleset — so
// discovery runs once and detection, validation, repair, and
// inference reuse the result.
func (d *Discovery) Ruleset() *Ruleset {
	params := d.result.Params
	return &Ruleset{
		Name: d.table.Name,
		Provenance: &Provenance{
			Source: d.table.Name,
			Rows:   d.table.NumRows(),
			Tool:   "discover",
			Params: &params,
		},
		PFDs: d.PFDs(),
	}
}

// Profiles returns the column profiles computed during discovery.
func (d *Discovery) Profiles() []ColumnProfile { return d.result.Profiles }

// Discover mines PFDs from a source with the paper's Figure 4
// algorithm. The defaults are the paper's §5.1 setting
// (DefaultParams); adjust with options. The source is materialized
// first (free for FromTable); cancellation is observed during
// materialization, between lattice levels, and by every worker of the
// candidate-evaluation pool, and surfaces as a *CanceledError.
func Discover(ctx context.Context, src Source, opts ...DiscoverOption) (*Discovery, error) {
	cfg := newDiscoverConfig(opts)
	t, err := source.Materialize(ctx, src)
	if err != nil {
		return nil, wrapCanceled(err, "discover", 0)
	}
	res, err := discovery.DiscoverContext(ctx, t, cfg.params, cfg.progress)
	if err != nil {
		return nil, wrapCanceled(err, "discover", t.NumRows())
	}
	return &Discovery{result: res, table: t}, nil
}

// Detection is the result of Detect: the deduplicated findings and the
// materialized input table they address.
type Detection struct {
	findings []Finding
	table    *Table
}

// Findings returns the findings, sorted by cell.
func (d *Detection) Findings() []Finding { return d.findings }

// All streams the findings.
func (d *Detection) All() iter.Seq[Finding] { return seqOf(d.findings) }

// Table returns the materialized input the findings refer to.
func (d *Detection) Table() *Table { return d.table }

// Repair applies the proposed fixes to a copy of the table, returning
// the repaired copy and the number of cells changed.
func (d *Detection) Repair() (*Table, int) { return repair.Apply(d.table, d.findings) }

// Detect applies PFDs to a source and returns one finding per distinct
// erroneous cell, each with a proposed, explainable repair when the
// violated constraint pins one. Cancellation is observed during
// materialization and between PFDs, and surfaces as a *CanceledError.
func Detect(ctx context.Context, src Source, pfds []*PFD, opts ...DetectOption) (*Detection, error) {
	cfg := newDetectConfig(opts)
	t, err := source.Materialize(ctx, src)
	if err != nil {
		return nil, wrapCanceled(err, "detect", 0)
	}
	findings, err := repair.DetectContextOptions(ctx, t, pfds, repair.Options{Progress: cfg.progress, NoPlanner: cfg.noPlan})
	if err != nil {
		return nil, wrapCanceled(err, "detect", t.NumRows())
	}
	return &Detection{findings: findings, table: t}, nil
}

// RepairResult reports a fixpoint repair run; see RepairToFixpoint.
type RepairResult struct {
	holistic HolisticResult
	input    *Table
}

// Table returns the repaired copy of the input.
func (r *RepairResult) Table() *Table { return r.holistic.Table }

// Input returns the materialized (unrepaired) input table.
func (r *RepairResult) Input() *Table { return r.input }

// Rounds returns how many detect-repair rounds ran.
func (r *RepairResult) Rounds() int { return r.holistic.Rounds }

// Repaired returns how many cells were rewritten.
func (r *RepairResult) Repaired() int { return r.holistic.Repaired }

// Remaining returns the findings still open after the last round
// (ties, or cells with no proposable repair).
func (r *RepairResult) Remaining() []Finding { return r.holistic.Remaining }

// AllRemaining streams the still-open findings.
func (r *RepairResult) AllRemaining() iter.Seq[Finding] { return seqOf(r.holistic.Remaining) }

// RepairToFixpoint materializes a source and runs detect-repair rounds
// until no proposable repair remains (chained errors such as a wrong
// zip masking a wrong city need more than one pass). Cancellation is
// observed between rounds and surfaces as a *CanceledError.
func RepairToFixpoint(ctx context.Context, src Source, pfds []*PFD, opts ...RepairOption) (*RepairResult, error) {
	cfg := newRepairConfig(opts)
	t, err := source.Materialize(ctx, src)
	if err != nil {
		return nil, wrapCanceled(err, "repair", 0)
	}
	res, err := repair.HolisticContext(ctx, t, pfds, repair.HolisticOptions{MaxRounds: cfg.maxRounds})
	if err != nil {
		return nil, wrapCanceled(err, "repair", t.NumRows())
	}
	return &RepairResult{holistic: res, input: t}, nil
}

// Validation is the result of Validate: a consistent final report of
// the whole run, plus the warm/live split when WithWarmup was used.
type Validation struct {
	report   StreamReport
	warmRows int
}

// Rows returns how many tuples were validated, warmup included.
func (v *Validation) Rows() int { return v.report.Rows }

// WarmRows returns how many tuples the WithWarmup reference
// contributed (0 without warmup). Live tuples occupy rows
// [WarmRows, Rows).
func (v *Validation) WarmRows() int { return v.warmRows }

// LiveRows returns how many live (post-warmup) tuples were validated.
func (v *Validation) LiveRows() int { return v.report.Rows - v.warmRows }

// Violations returns every retained violation, deterministically
// sorted (empty under WithoutViolationLog). Warm-replay violations are
// included; use Live to filter them out.
func (v *Validation) Violations() []StreamViolation { return v.report.Violations }

// All streams every retained violation.
func (v *Validation) All() iter.Seq[StreamViolation] { return seqOf(v.report.Violations) }

// Live streams the retained violations attributed to live tuples: the
// NewTuple findings on rows at or past the warmup boundary.
// Retroactive signals (NewTuple=false, the sentinel row -1) are
// excluded — they re-fire per majority-side tuple and may stem from
// delta-tolerated dirt in the reference batch.
func (v *Validation) Live() iter.Seq[StreamViolation] {
	return func(yield func(StreamViolation) bool) {
		for _, viol := range v.report.Violations {
			if viol.NewTuple && viol.Cell.Row >= v.warmRows {
				if !yield(viol) {
					return
				}
			}
		}
	}
}

// Report returns the raw engine report.
func (v *Validation) Report() StreamReport { return v.report }

// validateProgressEvery is how many live tuples pass between
// WithValidateProgress callbacks.
const validateProgressEvery = 4096

// Validate checks a source against PFDs with streaming (ingest-time)
// semantics and returns a consistent final report. By default it runs
// the sharded engine with one producer goroutine — deterministic row
// ids in source order; WithWorkers scales the producer-side pattern
// matching, WithSequentialChecker swaps in the sequential Checker
// (identical consensus semantics, pinned by the engine's differential
// test). WithWarmup folds a trusted reference in first so group
// consensus exists before the first live tuple.
//
// Errors are typed: *ParseError for malformed input,
// *MissingColumnError when a tuple lacks a column some PFD references,
// and *CanceledError when ctx is canceled — including while a producer
// is stalled on shard backpressure, which cancellation unblocks.
func Validate(ctx context.Context, src Source, pfds []*PFD, opts ...StreamOption) (*Validation, error) {
	cfg := newStreamConfig(opts)
	if cfg.sequential {
		return validateSequential(ctx, src, pfds, cfg)
	}

	// Suppress handler delivery during warm replay: reference data is
	// trusted, its violations are delta-tolerated dirt, not live
	// findings.
	var live atomic.Bool
	if cfg.warm == nil {
		live.Store(true)
	}
	engOpts := cfg.engine
	if h := engOpts.OnViolation; h != nil {
		engOpts.OnViolation = func(v StreamViolation) {
			if live.Load() {
				h(v)
			}
		}
	}

	eng := stream.NewContext(ctx, pfds, engOpts)
	warmRows := 0
	if cfg.warm != nil {
		n, err := warmEngine(ctx, eng, cfg.warm)
		if err != nil {
			eng.Close()
			return nil, wrapCanceled(err, "validate", n)
		}
		eng.Snapshot() // barrier: drain the warm batches before going live
		warmRows = n
		live.Store(true)
	}
	n, err := submitEngine(ctx, eng, src, cfg.workers, cfg.progress)
	rep := eng.Close()
	if err != nil {
		return nil, wrapCanceled(err, "validate", warmRows+n)
	}
	return &Validation{report: rep, warmRows: warmRows}, nil
}

// warmEngine folds the WithWarmup reference into the engine. Sources
// that can materialize a table (CSV files, in-memory tables) take the
// engine's dictionary-encoded fast path: SubmitTable matches each
// tableau cell once per distinct column value and replays the rows as
// code lookups. The trade is memory for matching time — the reference
// is held in RAM for the replay (references are curated clean batches,
// and the rule-producing paths materialize them anyway); a caller with
// a reference too large to materialize can wrap it in a plain Source
// (no ReadTable) to keep the bounded per-tuple loop, which remains the
// fallback for every other source.
func warmEngine(ctx context.Context, eng *stream.Engine, ref Source) (int, error) {
	if tr, ok := ref.(source.TableReader); ok {
		tbl, err := tr.ReadTable(ctx)
		if err != nil {
			return 0, err
		}
		if err := eng.SubmitTable(tbl); err != nil {
			return eng.Rows(), err
		}
		return tbl.NumRows(), nil
	}
	return submitEngine(ctx, eng, ref, 1, nil)
}

// submitEngine drives one source into the engine with the given number
// of producer goroutines, returning how many tuples were submitted.
// progress, when non-nil, is invoked from the goroutine iterating the
// source every validateProgressEvery tuples.
func submitEngine(ctx context.Context, eng *stream.Engine, src Source, workers int, progress func(int)) (int, error) {
	if workers <= 1 {
		n := 0
		for tuple, err := range src.Tuples(ctx) {
			if err != nil {
				return n, err
			}
			if err := eng.Submit(tuple); err != nil {
				return n, err
			}
			n++
			if progress != nil && n%validateProgressEvery == 0 {
				progress(n)
			}
		}
		return n, nil
	}

	tuples := make(chan Tuple, 4*workers)
	quit := make(chan struct{})
	var quitOnce sync.Once
	var submitted atomic.Int64
	var submitErr error
	var errOnce sync.Once

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tuple := range tuples {
				if err := eng.Submit(tuple); err != nil {
					errOnce.Do(func() { submitErr = err })
					quitOnce.Do(func() { close(quit) })
					return
				}
				submitted.Add(1)
			}
		}()
	}

	var srcErr error
	fed := 0
feed:
	for tuple, err := range src.Tuples(ctx) {
		if err != nil {
			srcErr = err
			break
		}
		select {
		case tuples <- tuple:
			fed++
			// Report the submitted count (what the API documents), not
			// the fed count — the two differ by the channel buffer and
			// in-flight tuples.
			if progress != nil && fed%validateProgressEvery == 0 {
				progress(int(submitted.Load()))
			}
		case <-quit:
			break feed
		}
	}
	close(tuples)
	wg.Wait()
	n := int(submitted.Load())
	if srcErr != nil {
		return n, srcErr
	}
	return n, submitErr
}

// validateSequential is Validate on the incremental Checker: one
// goroutine, identical consensus semantics.
func validateSequential(ctx context.Context, src Source, pfds []*PFD, cfg streamConfig) (*Validation, error) {
	checker := pfd.NewChecker(pfds)
	retain := !cfg.engine.DiscardViolations
	handler := cfg.engine.OnViolation
	var log []StreamViolation

	run := func(s Source, liveRun bool) (int, error) {
		n := 0
		for tuple, err := range s.Tuples(ctx) {
			if err != nil {
				return n, err
			}
			vs, err := checker.CheckNext(tuple)
			if err != nil {
				return n, err
			}
			if retain {
				log = append(log, vs...)
			}
			if liveRun {
				if handler != nil {
					for _, v := range vs {
						handler(v)
					}
				}
				n++
				if cfg.progress != nil && n%validateProgressEvery == 0 {
					cfg.progress(n)
				}
			} else {
				n++
			}
		}
		return n, nil
	}

	warmRows := 0
	if cfg.warm != nil {
		n, err := run(cfg.warm, false)
		if err != nil {
			return nil, wrapCanceled(err, "validate", n)
		}
		warmRows = n
	}
	n, err := run(src, true)
	if err != nil {
		return nil, wrapCanceled(err, "validate", warmRows+n)
	}

	idx := make(map[*PFD]int, len(pfds))
	for i, p := range pfds {
		idx[p] = i
	}
	stream.SortViolations(log, idx)
	return &Validation{
		report:   StreamReport{Rows: checker.Rows(), Violations: log},
		warmRows: warmRows,
	}, nil
}
