package pfd

import "pfd/internal/plan"

// PlanDescription is the explainable view of a ruleset's compiled
// shared-evaluation plan: how many distinct tableau cells and shared
// LHS groups the rules collapse to, construction time, and the
// cumulative execution counters (short-circuited groups, evaluation
// builds/extends/reuses). It is what `pfd detect -plan` prints and the
// service's GET /v1/tenants/{tenant}/plan returns.
type PlanDescription = plan.Description

// PlanGroup describes one shared LHS group of a PlanDescription.
type PlanGroup = plan.GroupInfo

// Plan compiles the ruleset's shared-evaluation plan — without
// executing it — and describes the factoring: rules with identical
// tableau cells and LHS signatures share evaluation work when the
// ruleset is validated or detected with. Construction is a pure pass
// over the tableaux (microseconds; no table, no statistics), so this
// is cheap to call for inspection. Validate/Detect compile and cache
// their own plans internally; this entry point exists for visibility,
// not as a required step.
func (rs *Ruleset) Plan() PlanDescription {
	return plan.New(rs.PFDs).Describe()
}
