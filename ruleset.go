package pfd

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pfd/internal/inference"
	"pfd/internal/pfd"
)

// A Ruleset is the durable rule artifact of the v2 API: a named
// collection of PFDs with provenance, produced once by discovery (or
// authored by hand) and reused across detection, streaming
// validation, repair, and the Section 3 reasoning tasks. It
// round-trips through two codecs:
//
//   - the paper's λ-notation text format — one PFD per line, '#'
//     comments, the grammar of ParsePFD (WriteTo / LoadRuleset);
//   - a versioned JSON format for tooling (MarshalJSON /
//     UnmarshalJSON, schema version RulesetVersion).
//
// LoadRuleset detects the codec from the content, so one loader
// serves both; DESIGN.md specifies the grammar and the JSON schema
// version policy.
type Ruleset struct {
	// Name identifies the artifact (by convention the source table).
	Name string
	// Provenance records where the rules came from; nil for
	// hand-assembled rulesets.
	Provenance *Provenance
	// PFDs are the rules, in discovery (or file) order.
	PFDs []*PFD
}

// Provenance records how a ruleset was produced, so a loaded artifact
// explains itself: the source it was mined from, how much data backed
// it, and under which parameters.
type Provenance struct {
	// Source names the table or stream the rules were mined from.
	Source string
	// Rows is how many records discovery scanned.
	Rows int
	// Tool identifies the producer ("discover", "mincover", ...).
	Tool string
	// Params are the discovery parameters, nil when not applicable.
	Params *Params
}

// NewRuleset assembles a ruleset from explicit PFDs.
func NewRuleset(name string, pfds ...*PFD) *Ruleset {
	return &Ruleset{Name: name, PFDs: pfds}
}

// Len returns the number of PFDs.
func (rs *Ruleset) Len() int { return len(rs.PFDs) }

// All streams the PFDs.
func (rs *Ruleset) All() iter.Seq[*PFD] { return seqOf(rs.PFDs) }

// Rules flattens the ruleset into single-row inference rules, one per
// tableau row — the form the Section 3 reasoning procedures consume.
func (rs *Ruleset) Rules() []*Rule { return inference.FromPFDs(rs.PFDs) }

// Detect applies the ruleset to a source; see the package-level
// Detect.
func (rs *Ruleset) Detect(ctx context.Context, src Source, opts ...DetectOption) (*Detection, error) {
	return Detect(ctx, src, rs.PFDs, opts...)
}

// Validate checks a source against the ruleset with streaming
// semantics; see the package-level Validate.
func (rs *Ruleset) Validate(ctx context.Context, src Source, opts ...StreamOption) (*Validation, error) {
	return Validate(ctx, src, rs.PFDs, opts...)
}

// RepairToFixpoint repairs a source under the ruleset; see the
// package-level RepairToFixpoint.
func (rs *Ruleset) RepairToFixpoint(ctx context.Context, src Source, opts ...RepairOption) (*RepairResult, error) {
	return RepairToFixpoint(ctx, src, rs.PFDs, opts...)
}

// Consistent decides whether some nonempty instance satisfies every
// rule of the set (Theorem 3), returning a single-tuple witness when
// one exists.
func (rs *Ruleset) Consistent() (map[string]string, bool) {
	return inference.Consistent(rs.Rules())
}

// Implies reports whether the ruleset logically implies psi, via the
// PFD-closure of Figure 7 (sound; see internal/inference for the
// completeness caveat).
func (rs *Ruleset) Implies(psi *Rule) bool { return inference.Implies(rs.Rules(), psi) }

// Prove constructs an axiomatic proof that the ruleset implies psi,
// or nil when the closure cannot derive it.
func (rs *Ruleset) Prove(psi *Rule) *Proof { return inference.Prove(rs.Rules(), psi) }

// MinimalCover returns a new ruleset with the same logical
// consequences and every redundant tableau row dropped (a row implied
// by the remaining rules): Section 3's minimal-cover task as an
// artifact-to-artifact transformation. Provenance is carried over
// with Tool marked "mincover".
func (rs *Ruleset) MinimalCover() (*Ruleset, error) {
	pfds, err := inference.ToPFDs(inference.MinimalCover(rs.Rules()))
	if err != nil {
		return nil, err
	}
	out := &Ruleset{Name: rs.Name, PFDs: pfds}
	if rs.Provenance != nil {
		p := *rs.Provenance
		p.Tool = "mincover"
		out.Provenance = &p
	} else {
		out.Provenance = &Provenance{Tool: "mincover"}
	}
	return out, nil
}

// A RuleParseError reports a malformed rule line in a ruleset file,
// with its 1-based line number and the file path when known. It
// unwraps to the underlying parse error.
type RuleParseError struct {
	Path string
	Line int
	Err  error
}

func (e *RuleParseError) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("pfd: %s:%d: %v", e.Path, e.Line, e.Err)
	}
	return fmt.Sprintf("pfd: rules line %d: %v", e.Line, e.Err)
}

func (e *RuleParseError) Unwrap() error { return e.Err }

// headerPrefix opens every structured text-codec header line.
const headerPrefix = "# pfd-ruleset v"

// WriteTo writes the ruleset in the λ-notation text format: a
// structured comment header (version, name, provenance) followed by
// one PFD per line, each rendered by PFD.String and parseable by
// ParsePFD. It implements io.WriterTo.
func (rs *Ruleset) WriteTo(w io.Writer) (int64, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s%d\n", headerPrefix, RulesetVersion)
	if rs.Name != "" {
		fmt.Fprintf(&b, "# name: %s\n", rs.Name)
	}
	if p := rs.Provenance; p != nil {
		if p.Source != "" {
			fmt.Fprintf(&b, "# source: %s\n", p.Source)
		}
		if p.Rows > 0 {
			fmt.Fprintf(&b, "# rows: %d\n", p.Rows)
		}
		if p.Tool != "" {
			fmt.Fprintf(&b, "# tool: %s\n", p.Tool)
		}
		if p.Params != nil {
			fmt.Fprintf(&b, "# params: %s\n", formatParams(*p.Params))
		}
	}
	for _, p := range rs.PFDs {
		fmt.Fprintf(&b, "%s\n", p)
	}
	n, err := w.Write(b.Bytes())
	return int64(n), err
}

// WriteFile persists the ruleset to path, choosing the codec by
// extension: ".json" writes the versioned JSON format (indented),
// anything else the λ-notation text format. LoadRulesetFile reads
// either back, regardless of extension.
func (rs *Ruleset) WriteFile(path string) error {
	var buf bytes.Buffer
	if strings.EqualFold(filepath.Ext(path), ".json") {
		b, err := rs.marshalIndentJSON()
		if err != nil {
			return err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	} else if _, err := rs.WriteTo(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadRuleset reads a ruleset from either codec, sniffing the content:
// input whose first non-space byte is '{' is the JSON format,
// everything else the λ-notation text format. Text parse failures are
// *RuleParseError values carrying the 1-based line number.
func LoadRuleset(r io.Reader) (*Ruleset, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return loadRuleset(data, "")
}

// LoadRulesetFile is LoadRuleset over a file; errors carry the path.
func LoadRulesetFile(path string) (*Ruleset, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return loadRuleset(data, path)
}

// loadRuleset sniffs the codec and dispatches; path (when known) is
// attached to errors.
func loadRuleset(data []byte, path string) (*Ruleset, error) {
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
		rs := new(Ruleset)
		if err := rs.UnmarshalJSON(data); err != nil {
			if path != "" {
				return nil, fmt.Errorf("pfd: %s: %w", path, err)
			}
			return nil, err
		}
		return rs, nil
	}
	return parseRulesetText(data, path)
}

// parseRulesetText reads the λ-notation codec: '#' lines are comments
// (structured headers recovered when present), every other nonblank
// line one PFD.
func parseRulesetText(data []byte, path string) (*Ruleset, error) {
	rs := new(Ruleset)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "":
		case strings.HasPrefix(text, "#"):
			if err := rs.parseHeader(text); err != nil {
				return nil, &RuleParseError{Path: path, Line: line, Err: err}
			}
		default:
			p, err := pfd.ParsePFD(text)
			if err != nil {
				// Legacy grammar fallback: pfdinfer's historical line
				// format also allowed multi-attribute RHS and bare
				// (pattern-less) attributes; accept those by parsing
				// as an inference rule and decomposing to normal form
				// (restriction iv of §4.2).
				if r, rerr := inference.ParseRule(text); rerr == nil {
					if ps, perr := inference.ToPFDs([]*inference.Rule{r}); perr == nil {
						rs.PFDs = append(rs.PFDs, ps...)
						continue
					}
				}
				return nil, &RuleParseError{Path: path, Line: line, Err: err}
			}
			rs.PFDs = append(rs.PFDs, p)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rs, nil
}

// parseHeader recovers the structured '#' headers WriteTo emits.
// Free-form comments — including ones that merely resemble a header
// but do not parse, like "# rows: about a thousand" — pass through
// untouched: '#' lines never fail a load, except the version marker
// itself, which is this codec's own discriminator and must be honored
// so newer artifacts are not silently misread.
func (rs *Ruleset) parseHeader(text string) error {
	switch {
	case strings.HasPrefix(text, headerPrefix):
		v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(text, headerPrefix)))
		if err != nil {
			return fmt.Errorf("bad ruleset version header %q", text)
		}
		if v < 1 || v > RulesetVersion {
			return fmt.Errorf("unsupported ruleset version %d (this build reads up to v%d)", v, RulesetVersion)
		}
	case strings.HasPrefix(text, "# name:"):
		rs.Name = strings.TrimSpace(strings.TrimPrefix(text, "# name:"))
	case strings.HasPrefix(text, "# source:"):
		rs.provenance().Source = strings.TrimSpace(strings.TrimPrefix(text, "# source:"))
	case strings.HasPrefix(text, "# rows:"):
		if n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(text, "# rows:"))); err == nil {
			rs.provenance().Rows = n
		}
	case strings.HasPrefix(text, "# tool:"):
		rs.provenance().Tool = strings.TrimSpace(strings.TrimPrefix(text, "# tool:"))
	case strings.HasPrefix(text, "# params:"):
		if p, err := parseParams(strings.TrimSpace(strings.TrimPrefix(text, "# params:"))); err == nil {
			rs.provenance().Params = &p
		}
	}
	return nil
}

func (rs *Ruleset) provenance() *Provenance {
	if rs.Provenance == nil {
		rs.Provenance = &Provenance{}
	}
	return rs.Provenance
}

// formatParams renders discovery parameters as "key=value" fields for
// the text header; parseParams inverts it.
func formatParams(p Params) string {
	fields := []string{
		"k=" + strconv.Itoa(p.MinSupport),
		"delta=" + strconv.FormatFloat(p.Delta, 'g', -1, 64),
		"gamma=" + strconv.FormatFloat(p.MinCoverage, 'g', -1, 64),
		"maxlhs=" + strconv.Itoa(p.MaxLHS),
	}
	if p.MaxGram > 0 {
		fields = append(fields, "maxgram="+strconv.Itoa(p.MaxGram))
	}
	if p.DisableGeneralize {
		fields = append(fields, "nogeneralize")
	}
	if p.DisableSubstringPrune {
		fields = append(fields, "noprune")
	}
	return strings.Join(fields, " ")
}

func parseParams(s string) (Params, error) {
	var p Params
	for _, field := range strings.Fields(s) {
		key, val, _ := strings.Cut(field, "=")
		var err error
		switch key {
		case "k":
			p.MinSupport, err = strconv.Atoi(val)
		case "delta":
			p.Delta, err = strconv.ParseFloat(val, 64)
		case "gamma":
			p.MinCoverage, err = strconv.ParseFloat(val, 64)
		case "maxlhs":
			p.MaxLHS, err = strconv.Atoi(val)
		case "maxgram":
			p.MaxGram, err = strconv.Atoi(val)
		case "nogeneralize":
			p.DisableGeneralize = true
		case "noprune":
			p.DisableSubstringPrune = true
		default:
			return p, fmt.Errorf("unknown params field %q", field)
		}
		if err != nil {
			return p, fmt.Errorf("bad params field %q: %v", field, err)
		}
	}
	return p, nil
}
